"""The batch-routing engine façade.

:class:`RoutingEngine` is the execution layer between the router's
price/timing logic (:mod:`repro.router`) and the Steiner oracles
(:mod:`repro.core`, :mod:`repro.baselines`).  One engine owns

* a :class:`~repro.engine.scheduler.NetScheduler` that partitions each
  rip-up-and-re-route round into batches sharing a congestion snapshot,
* a :class:`~repro.engine.executor.BatchExecutor` backend (``serial`` or
  ``process``) that routes each batch, and
* optionally a :class:`~repro.engine.cache.RerouteCache` that skips nets
  whose instance signature is unchanged since their last routing.

Determinism contract: for a fixed :class:`EngineConfig` scheduling policy,
every backend -- and every cache setting under the ``global`` cache scope --
produces bit-identical trees, because each net's tree is a pure function of
its (snapshot-derived) Steiner instance and its private RNG stream.  The
default configuration (``serial`` backend, ``window`` scheduling, cache off)
keeps the historical serial loop's batching and cost-refresh structure;
routed trees differ from pre-engine releases only through the per-net RNG
streams that replaced the old shared-per-round RNG (:mod:`repro.engine.rng`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.engine.cache import RerouteCache, RoundMemo
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    BatchExecutor,
    NetTask,
    make_executor,
)
from repro.engine.scheduler import NetBatch, NetScheduler
from repro.grid.congestion import CongestionMap
from repro.grid.graph import RoutingGraph

if TYPE_CHECKING:  # circular at runtime: repro.router imports repro.engine
    from repro.router.netlist import Netlist
    from repro.router.resource_sharing import ResourceSharingPrices

__all__ = ["EngineConfig", "RoundReport", "RoutingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of the batch-routing engine.

    Attributes
    ----------
    backend:
        Executor backend: ``"serial"`` (in-process, default) or
        ``"process"`` (multiprocessing pool).
    num_workers:
        Worker count for the ``process`` backend; ``None`` auto-sizes.
    scheduling:
        Batch formation policy: ``"window"`` (cost-refresh windows,
        reproduces the legacy serial loop) or ``"bbox"`` (conflict-free
        bounding-box batches with per-batch cost refresh).
    max_batch_size:
        Upper bound on ``bbox`` batch sizes (``None`` = unbounded).
    bbox_halo:
        Tiles added around each net's pin bounding box for conflict tests
        and cache regions.
    reroute_cache:
        Enables the incremental re-route cache.
    cache_scope:
        ``"bbox"`` (digest costs over the net's bounding region, fast) or
        ``"global"`` (digest the full cost vector, exact).
    """

    backend: str = "serial"
    num_workers: Optional[int] = None
    scheduling: str = "window"
    max_batch_size: Optional[int] = None
    bbox_halo: int = 2
    reroute_cache: bool = False
    cache_scope: str = "bbox"

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.backend!r}; "
                f"available: {sorted(EXECUTOR_BACKENDS)}"
            )
        if self.scheduling not in ("window", "bbox"):
            raise ValueError(f"unknown scheduling policy {self.scheduling!r}")
        if self.cache_scope not in ("bbox", "global"):
            raise ValueError(f"unknown cache scope {self.cache_scope!r}")
        if self.bbox_halo < 0:
            raise ValueError("bbox_halo must be non-negative")
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")


@dataclass
class RoundReport:
    """Bookkeeping of one engine round (for benchmarks and diagnostics)."""

    round_index: int
    num_batches: int = 0
    nets_routed: int = 0
    nets_cached: int = 0
    nets_replayed: int = 0
    walltime_seconds: float = 0.0


class RoutingEngine:
    """Routes rip-up-and-re-route rounds for a :class:`GlobalRouter`.

    The engine mutates the shared ``trees`` list and ``congestion`` map that
    the router owns; prices are only read.  The router remains responsible
    for timing analysis and price updates between rounds.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        netlist: "Netlist",
        oracle: SteinerOracle,
        bifurcation: BifurcationModel,
        congestion: CongestionMap,
        prices: "ResourceSharingPrices",
        seed: int,
        cost_refresh_interval: int,
        config: Optional[EngineConfig] = None,
        net_indices: Optional[Sequence[int]] = None,
        executor: Optional[BatchExecutor] = None,
    ) -> None:
        """``net_indices`` restricts the engine to a subset of the netlist
        (the shard layer's per-region engines); ``executor`` injects a
        shared, caller-owned backend instead of creating a private one --
        the engine then never closes it."""
        if cost_refresh_interval < 1:
            raise ValueError("cost_refresh_interval must be positive")
        self.graph = graph
        self.netlist = netlist
        self.oracle = oracle
        self.bifurcation = bifurcation
        self.congestion = congestion
        self.prices = prices
        self.seed = seed
        self.cost_refresh_interval = cost_refresh_interval
        self.config = config or EngineConfig()
        self.net_indices = None if net_indices is None else list(net_indices)
        self.scheduler = NetScheduler(graph, netlist, halo=self.config.bbox_halo)
        self._owns_executor = executor is None
        self.executor: BatchExecutor = executor if executor is not None else make_executor(
            self.config.backend,
            graph,
            oracle,
            bifurcation,
            seed,
            num_workers=self.config.num_workers,
        )
        self.cache: Optional[RerouteCache] = None
        if self.config.reroute_cache:
            self.cache = self._make_cache()
        # The batch structure depends only on static inputs (netlist, boxes,
        # policy), so it is computed once and reused every round -- the bbox
        # policy's greedy colouring is quadratic in the net count.
        self._batches: List[NetBatch] = self.scheduler.schedule(
            net_indices=self.net_indices,
            policy=self.config.scheduling,
            window_size=self.cost_refresh_interval,
            max_batch_size=self.config.max_batch_size,
        )
        self.round_reports: List[RoundReport] = []

    # ------------------------------------------------------------------ API
    def ensure_cache(self) -> RerouteCache:
        """The engine's re-route cache, built on demand when absent.

        Replay/memo rounds need a cache for their signature computation even
        on engines configured cache-free -- the shard layer's pooled region
        engines, whose caches must stay round-stateless.  Such callers build
        the cache lazily with this method (idempotent) and invalidate it per
        round, which keeps the signature machinery without reintroducing
        inter-round cache state.
        """
        if self.cache is None:
            self.cache = self._make_cache()
        return self.cache

    def route_round(
        self,
        round_index: int,
        trees: List[Optional[EmbeddedTree]],
        record: bool = False,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> List[SteinerInstance]:
        """Route every net once, updating ``trees`` and the congestion map.

        Returns the Steiner instances generated for the round when
        ``record`` is true (in batch order), or an empty list otherwise.

        ``replay_round`` / ``log_round`` drive memoised replays (see
        :class:`~repro.engine.cache.RoundMemo`): when ``replay_round`` is
        given, a net whose lookup signature matches the memo reuses the
        memoised tree instead of calling the oracle, and the ordinary
        inter-round cache bookkeeping is bypassed; when ``log_round`` is
        given, every net's lookup signature is recorded into it.  Both
        require the re-route cache to be configured.
        """
        if (replay_round is not None or log_round is not None) and self.cache is None:
            raise ValueError("replay/memo rounds require reroute_cache=True")
        report = RoundReport(round_index=round_index)
        started = time.monotonic()
        collected: List[SteinerInstance] = []
        # Only the record path needs a private delay copy (and only when no
        # batch context supplies the executor's shared one).
        record_delay = self.graph.delay_array() if record else None
        for batch in self._batches:
            with obs.span(
                "batch",
                round=round_index,
                batch=report.num_batches,
                nets=len(batch.nets),
            ) as batch_span:
                report.num_batches += 1
                snapshot = self.congestion.snapshot()
                costs = snapshot.edge_costs(self.prices.edge_prices)
                # One shared cost context per batch: list conversions,
                # future-cost estimator, and validation amortise over every
                # net routed against this vector (None in reference mode).
                context = self.executor.make_context(costs)
                if context is not None:
                    costs = context.cost
                # Signature ingredients that are constant across the batch: the
                # bbox scope folds in the global cost floor, the global scope
                # the full-vector digest.  Compute each once, not per net.
                cost_floor = 0.0
                cost_digest: Optional[bytes] = None
                if self.cache is not None:
                    if self.cache.scope == "global":
                        cost_digest = self.cache.global_cost_digest(costs)
                    else:
                        cost_floor = self.cache.global_cost_floor(costs)
                tasks: List[NetTask] = []
                signatures: Dict[int, bytes] = {}
                for net_index in batch.nets:
                    task = self._make_task(net_index)
                    if record:
                        collected.append(
                            self._record_instance(task, costs, record_delay, context)
                        )
                    if self.cache is not None:
                        old_tree = trees[net_index]
                        sig = self.cache.signature(
                            net_index,
                            task.root,
                            task.sinks,
                            task.weights,
                            costs,
                            self.bifurcation,
                            tree_edges=old_tree.edges if old_tree is not None else (),
                            cost_floor=cost_floor,
                            cost_digest=cost_digest,
                        )
                        signatures[net_index] = sig
                        if log_round is not None:
                            log_round.signatures[net_index] = sig
                        if replay_round is not None:
                            # Replay mode: identical lookup signature means the
                            # deterministic oracle would reproduce the memoised
                            # tree, so install it without an oracle call.  The
                            # memo run's usage is not booked here, so the delta
                            # is applied like a fresh routing.
                            memo_tree = replay_round.trees.get(net_index)
                            if (
                                memo_tree is not None
                                and replay_round.signatures.get(net_index) == sig
                            ):
                                self.congestion.apply_tree_delta(
                                    old_tree.edges if old_tree is not None else None,
                                    memo_tree.edges,
                                )
                                trees[net_index] = memo_tree
                                report.nets_replayed += 1
                                continue
                        elif old_tree is not None and self.cache.is_fresh(net_index, sig):
                            # Unchanged instance: the oracle would rebuild the
                            # exact same tree, so keep it (usage already booked).
                            report.nets_cached += 1
                            continue
                    tasks.append(task)
                routed = self.executor.route_batch(costs, tasks, context) if tasks else {}
                tasks_by_index = {task.net_index: task for task in tasks}
                for net_index in batch.nets:
                    new_tree = routed.get(net_index)
                    if new_tree is not None:
                        old_tree = trees[net_index]
                        self.congestion.apply_tree_delta(
                            old_tree.edges if old_tree is not None else None,
                            new_tree.edges,
                        )
                        trees[net_index] = new_tree
                        report.nets_routed += 1
                    if self.cache is not None and replay_round is None:
                        sig = signatures[net_index]
                        if new_tree is not None and self.cache.scope != "global":
                            # Re-digest under the *new* tree's bounding region so
                            # the entry can match next round's lookup (which will
                            # use this tree's edges) without an extra warm-up
                            # round after every re-route.
                            task = tasks_by_index[net_index]
                            sig = self.cache.signature(
                                net_index,
                                task.root,
                                task.sinks,
                                task.weights,
                                costs,
                                self.bifurcation,
                                tree_edges=new_tree.edges,
                                cost_floor=cost_floor,
                                cost_digest=cost_digest,
                            )
                        self.cache.store(net_index, sig)
                batch_span.set(routed=len(routed))
        report.walltime_seconds = time.monotonic() - started
        self.round_reports.append(report)
        # Engine counters book into whatever registry is active here: the
        # process default in serial/seam runs, a worker-local one inside
        # pooled region workers (shipped back and merged in region order).
        obs.inc("engine.rounds")
        obs.inc("engine.batches", report.num_batches)
        obs.inc("engine.oracle_calls", report.nets_routed)
        obs.inc("engine.nets_cached", report.nets_cached)
        obs.inc("engine.nets_replayed", report.nets_replayed)
        obs.observe("engine.round_seconds", report.walltime_seconds)
        return collected

    def scheduled_nets(self) -> List[int]:
        """The engine's net indices in scheduled (batch) order."""
        return [net for batch in self._batches for net in batch.nets]

    def close(self) -> None:
        """Release executor resources (idempotent; shared executors are
        closed by their owner, not here)."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "RoutingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ internals
    def _make_cache(self) -> RerouteCache:
        scope = self.config.cache_scope
        landmarks = getattr(getattr(self.oracle, "config", None), "num_landmarks", 0)
        if scope == "bbox" and (not self.oracle.region_cache_safe or landmarks):
            # The region digest only sees costs near the net; oracles
            # that consult the full cost vector (global shortest-path
            # embeddings, landmark/ALT lower bounds) can change their
            # tree on a remote cost change the digest misses, so fall
            # back to exact full-vector signatures.
            scope = "global"
        return RerouteCache(
            self.graph,
            [self.scheduler.net_box(i) for i in range(self.netlist.num_nets)],
            scope=scope,
        )

    def _make_task(self, net_index: int) -> NetTask:
        root, sinks = self.netlist.net_terminals(self.graph, net_index)
        net_name = self.netlist.nets[net_index].name
        return NetTask(
            net_index=net_index,
            root=root,
            sinks=tuple(sinks),
            weights=tuple(self.prices.weights_of(net_index)),
            name=f"{self.netlist.name}/{net_name}",
            net_name=net_name,
        )

    def _record_instance(
        self,
        task: NetTask,
        costs: np.ndarray,
        delay: Optional[np.ndarray],
        context=None,
    ) -> SteinerInstance:
        # Recorded instances travel (pickling, persistence), so they do not
        # carry the batch context -- only its shared delay array.
        if context is not None and context.delay is not None:
            delay = context.delay
        elif delay is None:  # pragma: no cover - defensive
            delay = self.graph.delay_array()
        return SteinerInstance.from_payload(
            self.graph, task.payload(costs, self.bifurcation), delay=delay
        )
