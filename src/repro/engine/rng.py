"""Deterministic per-net RNG derivation.

Every Steiner oracle call receives its own :class:`random.Random` derived
from the router seed and a stable per-net key by an explicit formula.  This
replaces the old ``random.Random((seed, net_index).__hash__())`` scheme,
which depended on CPython's tuple hashing (randomised between interpreter
builds and not guaranteed stable across versions) and, worse, on one RNG
being *shared* by all nets of a round -- consuming randomness for net ``i``
changed the tree of net ``i + 1``, which makes parallel execution impossible.

Streams are keyed by the net's *name*, not its index: a net keeps its
private stream when other nets are inserted or removed around it (ECO
``remove_net`` index shifts) and when it is routed as part of a sub-netlist
(the shard layer's per-region netlists).  With one independent stream per
net, a net's tree is a pure function of its Steiner instance and
``(seed, name)``, so the serial and process backends of
:mod:`repro.engine.executor` produce bit-identical trees, the re-route cache
of :mod:`repro.engine.cache` can prove that re-solving an unchanged instance
would reproduce the cached tree, and the replay memos of
:mod:`repro.serve.session` survive net-index shifts.

The index-keyed helpers are kept for callers that have no name (synthetic
single-instance experiments); the router and engine always use names.
"""

from __future__ import annotations

import hashlib
import random

__all__ = [
    "NET_STREAM_STRIDE",
    "net_stream_seed",
    "derive_net_rng",
    "net_name_key",
    "net_stream_seed_for_name",
    "derive_net_rng_for_name",
]

#: Multiplier separating per-net RNG streams; a prime much larger than any
#: realistic net count so distinct ``(seed, net_index)`` pairs cannot collide.
NET_STREAM_STRIDE = 1_000_003


def net_stream_seed(seed: int, net_index: int) -> int:
    """The integer seed of net ``net_index``'s private RNG stream."""
    return seed * NET_STREAM_STRIDE + net_index


def derive_net_rng(seed: int, net_index: int) -> random.Random:
    """A fresh, independent RNG for one net's oracle call (index-keyed)."""
    return random.Random(net_stream_seed(seed, net_index))


def net_name_key(name: str) -> int:
    """A stable 64-bit integer key of a net name.

    Uses BLAKE2b (not the built-in ``hash``, which is salted per process),
    so the key -- and therefore the net's RNG stream -- is identical across
    interpreter runs, worker processes, and daemon restarts.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def net_stream_seed_for_name(seed: int, name: str) -> int:
    """The integer seed of the named net's private RNG stream.

    The router seed selects a disjoint block of 2**64 stream keys and the
    name key selects the stream within the block, so streams are independent
    across both seeds and names.
    """
    return (seed * NET_STREAM_STRIDE + 1) * (1 << 64) + net_name_key(name)


def derive_net_rng_for_name(seed: int, name: str) -> random.Random:
    """A fresh, independent RNG for one net's oracle call (name-keyed)."""
    return random.Random(net_stream_seed_for_name(seed, name))
