"""Deterministic per-net RNG derivation.

Every Steiner oracle call receives its own :class:`random.Random` derived
from the router seed and the net index by an explicit, stable formula.  This
replaces the old ``random.Random((seed, net_index).__hash__())`` scheme,
which depended on CPython's tuple hashing (randomised between interpreter
builds and not guaranteed stable across versions) and, worse, on one RNG
being *shared* by all nets of a round -- consuming randomness for net ``i``
changed the tree of net ``i + 1``, which makes parallel execution impossible.

With one independent stream per net, a net's tree is a pure function of its
Steiner instance and ``(seed, net_index)``, so the serial and process
backends of :mod:`repro.engine.executor` produce bit-identical trees, and the
re-route cache of :mod:`repro.engine.cache` can prove that re-solving an
unchanged instance would reproduce the cached tree.
"""

from __future__ import annotations

import random

__all__ = ["NET_STREAM_STRIDE", "net_stream_seed", "derive_net_rng"]

#: Multiplier separating per-net RNG streams; a prime much larger than any
#: realistic net count so distinct ``(seed, net_index)`` pairs cannot collide.
NET_STREAM_STRIDE = 1_000_003


def net_stream_seed(seed: int, net_index: int) -> int:
    """The integer seed of net ``net_index``'s private RNG stream."""
    return seed * NET_STREAM_STRIDE + net_index


def derive_net_rng(seed: int, net_index: int) -> random.Random:
    """A fresh, independent RNG for one net's oracle call."""
    return random.Random(net_stream_seed(seed, net_index))
