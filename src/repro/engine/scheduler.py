"""Net scheduling: partitioning a routing round into parallel batches.

The resource-sharing decomposition routes every net independently against a
*frozen* congestion cost vector; usage updates only feed back into costs at
refresh points.  The scheduler exploits that structure and turns one round
into an ordered list of :class:`NetBatch` objects.  All nets of a batch are
routed against one shared congestion snapshot (by any executor backend, in
any order), then their usage deltas are applied, then the next batch starts.

Two policies are provided:

``window``
    Batches are simply the cost-refresh windows of the legacy serial loop
    (``cost_refresh_interval`` consecutive nets).  This reproduces the
    historical :class:`repro.router.router.GlobalRouter` behaviour exactly:
    within a window the serial loop routed every net against the same cost
    vector anyway, so routing the window as one parallel batch is free of
    interleaving artifacts by construction.

``bbox``
    Batches are conflict-free sets built by greedy colouring of the net
    bounding-box overlap graph.  Two nets conflict when their (halo-expanded)
    planar bounding boxes intersect; nets of a batch therefore consume
    disjoint routing regions and can share a congestion snapshot even though
    a serial router would have refreshed costs between them.  Costs are
    refreshed before *every* batch, so congestion feedback is finer-grained
    than in the window policy while batches stay arbitrarily wide.

Both policies are fully deterministic: batch membership and order depend only
on the netlist, the graph, and the scheduler parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.grid.geometry import BoundingBox, bounding_box
from repro.grid.graph import RoutingGraph

if TYPE_CHECKING:  # circular at runtime: repro.router imports repro.engine
    from repro.router.netlist import Netlist

# BoundingBox moved to repro.grid.geometry (the shard partitioner needs it
# below the engine layer); re-exported here for compatibility.
__all__ = ["BoundingBox", "NetBatch", "NetScheduler"]


@dataclass(frozen=True)
class NetBatch:
    """One schedulable unit: nets routed against a shared congestion snapshot."""

    index: int
    nets: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.nets)


class NetScheduler:
    """Partitions the nets of a routing round into :class:`NetBatch` lists.

    Parameters
    ----------
    graph:
        The routing graph (supplies grid dimensions for halo clipping).
    netlist:
        The netlist whose nets are scheduled.  Pin bounding boxes are
        precomputed once; they are static across rounds.
    halo:
        Number of tiles added around each net's pin bounding box before
        testing for conflicts.  Routes may detour slightly outside their pin
        box, so a non-zero halo makes the ``bbox`` policy's independence
        assumption hold in practice.
    """

    def __init__(self, graph: RoutingGraph, netlist: "Netlist", halo: int = 2) -> None:
        if halo < 0:
            raise ValueError("halo must be non-negative")
        self.graph = graph
        self.netlist = netlist
        self.halo = halo
        self._boxes: List[BoundingBox] = [
            self._pin_box(net_index).expanded(halo, graph.nx, graph.ny)
            for net_index in range(netlist.num_nets)
        ]

    def _pin_box(self, net_index: int) -> BoundingBox:
        pins = self.netlist.nets[net_index].pins()
        return BoundingBox(*bounding_box(p.position for p in pins))

    # ------------------------------------------------------------- queries
    def net_box(self, net_index: int) -> BoundingBox:
        """The halo-expanded planar bounding box of one net."""
        return self._boxes[net_index]

    def conflict(self, a: int, b: int) -> bool:
        """Whether nets ``a`` and ``b`` may compete for routing resources."""
        return self._boxes[a].overlaps(self._boxes[b])

    # ----------------------------------------------------------- schedules
    def schedule(
        self,
        net_indices: Optional[Sequence[int]] = None,
        policy: str = "window",
        window_size: int = 8,
        max_batch_size: Optional[int] = None,
    ) -> List[NetBatch]:
        """Partition ``net_indices`` (default: all nets) into batches.

        Every net appears in exactly one batch; concatenating the batches
        yields a permutation of ``net_indices``.  The ``window`` policy
        additionally preserves the input order.
        """
        if net_indices is None:
            net_indices = range(self.netlist.num_nets)
        nets = list(net_indices)
        if policy == "window":
            batches = self._schedule_window(nets, window_size)
        elif policy == "bbox":
            batches = self._schedule_bbox(nets, max_batch_size)
        else:
            raise ValueError(f"unknown scheduling policy {policy!r}")
        return batches

    def _schedule_window(self, nets: List[int], window_size: int) -> List[NetBatch]:
        if window_size < 1:
            raise ValueError("window_size must be positive")
        return [
            NetBatch(batch_index, tuple(nets[start : start + window_size]))
            for batch_index, start in enumerate(range(0, len(nets), window_size))
        ]

    def _schedule_bbox(self, nets: List[int], max_batch_size: Optional[int]) -> List[NetBatch]:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        # Greedy colouring in net order: place each net into the first batch
        # that has room and contains no conflicting net.  Deterministic, and
        # keeps batch contents close to the serial routing order so the
        # price-update dynamics stay comparable.
        members: List[List[int]] = []
        for net in nets:
            placed = False
            for batch in members:
                if max_batch_size is not None and len(batch) >= max_batch_size:
                    continue
                if any(self.conflict(net, other) for other in batch):
                    continue
                batch.append(net)
                placed = True
                break
            if not placed:
                members.append([net])
        return [NetBatch(i, tuple(batch)) for i, batch in enumerate(members)]
