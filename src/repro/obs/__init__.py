"""Observability for the routing stack: tracing, metrics, and logging.

Import this module as ``from repro import obs`` and use:

* ``obs.span("round", round=i)`` / ``obs.event(...)`` — structured tracing
  (no-ops unless ``--trace PATH`` configured a tracer);
* ``obs.inc("engine.oracle_calls")`` et al — always-on process-safe
  metrics, aggregated across pool workers via snapshot shipping;
* ``obs.configure_logging("debug")`` — stdlib logging for the ``repro.*``
  logger tree.

See DESIGN.md's "Observability" section for the span taxonomy and the
metric-ownership rules that keep serial and pooled runs reporting
identical counters.
"""

from .logcfg import configure_logging, get_logger, log_pool_degradation
from .metrics import (
    MetricsRegistry,
    active_registry,
    default_registry,
    inc,
    merge_snapshot,
    observe,
    set_gauge,
    swap_registry,
    use_registry,
)
from .trace import (
    NOOP_SPAN,
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    close_tracing,
    configure_tracing,
    event,
    get_tracer,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "close_tracing",
    "configure_tracing",
    "event",
    "get_tracer",
    "span",
    "MetricsRegistry",
    "active_registry",
    "default_registry",
    "inc",
    "merge_snapshot",
    "observe",
    "set_gauge",
    "swap_registry",
    "use_registry",
    "configure_logging",
    "get_logger",
    "log_pool_degradation",
]
