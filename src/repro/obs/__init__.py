"""Observability for the routing stack: tracing, metrics, and logging.

Import this module as ``from repro import obs`` and use:

* ``obs.span("round", round=i)`` / ``obs.event(...)`` — structured tracing
  (no-ops unless ``--trace PATH`` configured a tracer);
* ``obs.inc("engine.oracle_calls")`` et al — always-on process-safe
  metrics, aggregated across pool workers via snapshot shipping;
* ``obs.configure_logging("debug")`` — stdlib logging for the ``repro.*``
  logger tree;
* ``obs.publish("round", ...)`` / ``obs.bus_context(job_id=...)`` — the
  live pub/sub event bus (no-ops unless a daemon installed one);
* ``obs.RoundSeries`` / ``obs.round_sample`` — per-round time-series
  samples recorded by the router;
* ``obs.render_prometheus`` / ``obs.chrome_trace`` — exporters to the
  Prometheus text exposition and Chrome trace-event formats.

See DESIGN.md's "Observability" and "Live telemetry" sections for the
span taxonomy, the metric-ownership rules that keep serial and pooled
runs reporting identical counters, and the event schema.
"""

from .bus import (
    DEFAULT_QUEUE_DEPTH,
    EVENT_SCHEMA_VERSION,
    EventBus,
    Subscription,
    bus_context,
    configure_bus,
    get_bus,
    publish,
)
from .export import chrome_trace, render_prometheus
from .logcfg import configure_logging, get_logger, log_pool_degradation
from .metrics import (
    SAMPLE_WINDOW,
    MetricsRegistry,
    active_registry,
    default_registry,
    inc,
    merge_snapshot,
    observe,
    set_gauge,
    swap_registry,
    use_registry,
)
from .timeseries import DEFAULT_SERIES_MAXLEN, RoundSeries, round_sample
from .trace import (
    NOOP_SPAN,
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    close_tracing,
    configure_tracing,
    event,
    get_tracer,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "close_tracing",
    "configure_tracing",
    "event",
    "get_tracer",
    "span",
    "SAMPLE_WINDOW",
    "MetricsRegistry",
    "active_registry",
    "default_registry",
    "inc",
    "merge_snapshot",
    "observe",
    "set_gauge",
    "swap_registry",
    "use_registry",
    "DEFAULT_QUEUE_DEPTH",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "Subscription",
    "bus_context",
    "configure_bus",
    "get_bus",
    "publish",
    "DEFAULT_SERIES_MAXLEN",
    "RoundSeries",
    "round_sample",
    "chrome_trace",
    "render_prometheus",
    "configure_logging",
    "get_logger",
    "log_pool_degradation",
]
