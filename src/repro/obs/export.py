"""Exporters: metrics as Prometheus text, traces as Chrome trace events.

Two one-way bridges out of the repo's own observability formats into
tooling everyone already runs:

* :func:`render_prometheus` renders a
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` in the Prometheus
  text exposition format (version 0.0.4): counters as ``_total``
  counters, gauges as gauges, histograms as summaries with
  ``quantile="0.5|0.95|0.99"`` sample lines plus ``_sum``/``_count``.
  The serve daemon's ``metrics`` op serves it under
  ``format="prometheus"`` so a scrape job needs nothing but
  ``python -m repro metrics --format prometheus``.

* :func:`chrome_trace` converts a parsed JSON-lines trace
  (:func:`repro.obs.summary.load_trace`) into the Chrome trace-event
  format -- ``span`` records become complete (``"ph": "X"``) events with
  microsecond timestamps, ``event`` records become thread-scoped instants
  -- so a routing run opens directly in Perfetto or ``chrome://tracing``.
  Thread ids are compacted to small integers in first-seen order; traces
  from before spans carried a ``tid`` collapse onto one track.

Both renderings are deterministic for deterministic inputs (names are
sorted, ids assigned in first-seen order) so goldens and CI validations
can compare them textually.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

__all__ = ["render_prometheus", "chrome_trace"]

#: Characters legal in a Prometheus metric name body.
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantile keys rendered as summary quantile labels.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _metric_name(name: str, prefix: str = "repro_") -> str:
    """``name`` mangled into a legal Prometheus metric name."""
    body = _NAME_SANITIZE.sub("_", name)
    if body and body[0].isdigit():
        body = "_" + body
    return prefix + body


def _value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """A metrics snapshot in the Prometheus text exposition format."""
    counters: Dict[str, object] = snapshot.get("counters", {})  # type: ignore[assignment]
    gauges: Dict[str, object] = snapshot.get("gauges", {})  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, object]] = snapshot.get(  # type: ignore[assignment]
        "histograms", {}
    )
    lines: List[str] = []
    for name in sorted(counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_value(counters[name])}")
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_value(gauges[name])}")
    for name in sorted(histograms):
        metric = _metric_name(name)
        hist = histograms[name]
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            if key in hist:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_value(hist[key])}'
                )
        lines.append(f"{metric}_sum {_value(hist.get('total', 0.0))}")
        lines.append(f"{metric}_count {_value(hist.get('count', 0))}")
    return "\n".join(lines) + "\n"


def chrome_trace(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """A parsed repro trace as a Chrome trace-event document.

    Spans map to complete events (``ph: "X"``, wall-clock microsecond
    ``ts``, monotonic-measured ``dur``); point events map to thread-scoped
    instants (``ph: "i"``).  The result JSON-dumps directly into a
    ``.json`` file Perfetto and ``chrome://tracing`` open as-is.
    """
    header: Dict[str, object] = {}
    if records and records[0].get("type") == "trace_header":
        header = records[0]
    pid = int(header.get("pid", 0) or 0)
    tid_map: Dict[object, int] = {}

    def compact_tid(record: Dict[str, object]) -> int:
        raw = record.get("tid", 0)
        if raw not in tid_map:
            tid_map[raw] = len(tid_map) + 1
        return tid_map[raw]

    events: List[Dict[str, object]] = []
    for record in records:
        kind = record.get("type")
        if kind == "span":
            events.append(
                {
                    "name": str(record.get("name")),
                    "cat": "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": compact_tid(record),
                    "ts": float(record.get("start", 0.0)) * 1e6,  # type: ignore[arg-type]
                    "dur": float(record.get("duration", 0.0)) * 1e6,  # type: ignore[arg-type]
                    "args": dict(record.get("attrs") or {}),  # type: ignore[arg-type]
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": str(record.get("name")),
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": compact_tid(record),
                    "ts": float(record.get("time", 0.0)) * 1e6,  # type: ignore[arg-type]
                    "args": dict(record.get("attrs") or {}),  # type: ignore[arg-type]
                }
            )
    # Spans are written at *exit*; sorting by start time (longest first on
    # ties, so parents precede their children) restores the timeline.
    events.sort(key=lambda e: (e["ts"], -float(e.get("dur", 0.0))))  # type: ignore[arg-type]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": header.get("format"),
            "schema": header.get("schema"),
        },
    }
