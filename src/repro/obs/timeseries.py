"""Per-round time-series: a bounded ring buffer of routing-round samples.

Every completed resource-sharing round appends one :func:`round_sample`
dict to the router's :class:`RoundSeries` -- the quantities an operator
watches to judge convergence of the divide-and-conquer flow (per-round
overflow and priced congestion cost, oracle-call and cache counts, the
per-region/seam walltime split of sharded rounds, and the pool/IPC
overhead of region-parallel execution).

The series is always on: one small dict per *round* (not per net) costs
nothing against a round's routing work and observes only -- it never feeds
back into prices, ordering, or RNG streams, so recorded and unrecorded
runs stay bit-identical.  The buffer is bounded (drop-oldest) so
long-lived daemon sessions cannot grow without bound; ``total_recorded``
keeps the lifetime count.

Timestamps: the ``t`` field is a *monotonic* offset from the series'
creation (durations and offsets never come from the wall clock); samples
carry no wall-clock stamp of their own -- the job records they are
persisted into already have wall stamps.

Consumers: the serve daemon's per-round hook copies the latest sample
into the job record (``history`` op), publishes it as a ``round`` event on
the bus, and ``RoutingSession.series`` exposes the last flow's series for
in-process callers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

import numpy as np

__all__ = ["DEFAULT_SERIES_MAXLEN", "RoundSeries", "round_sample"]

#: Default ring-buffer bound: generous for any real flow (rounds are
#: single digits), finite for a daemon session replaying ECOs forever.
DEFAULT_SERIES_MAXLEN = 512


class RoundSeries:
    """A thread-safe bounded ring buffer of per-round sample dicts."""

    def __init__(self, maxlen: int = DEFAULT_SERIES_MAXLEN) -> None:
        if maxlen < 1:
            raise ValueError("series maxlen must be positive")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=maxlen)
        self._t0 = time.monotonic()
        #: Lifetime sample count (keeps counting past the buffer bound).
        self.total_recorded = 0

    def record(self, sample: Dict[str, object]) -> Dict[str, object]:
        """Stamp ``sample`` with its monotonic offset and append it."""
        stamped = dict(sample)
        stamped.setdefault("t", round(time.monotonic() - self._t0, 6))
        with self._lock:
            self._samples.append(stamped)
            self.total_recorded += 1
        return dict(stamped)

    def samples(self) -> List[Dict[str, object]]:
        """Detached copies of the retained samples, oldest first."""
        with self._lock:
            return [dict(s) for s in self._samples]

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recent sample (detached copy), or ``None`` when empty."""
        with self._lock:
            if not self._samples:
                return None
            return dict(self._samples[-1])

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


def round_sample(router, round_index: int) -> Dict[str, object]:
    """One plain-dict sample of ``router``'s state right after a round.

    ``router`` is a :class:`repro.router.router.GlobalRouter` (typed as
    ``object`` here to keep this module import-light); everything read is
    part of its public round contract: the engine's last
    :class:`~repro.engine.engine.RoundReport`, the congestion map, the
    prices, the timing report, and -- for sharded flows -- the
    coordinator's ``last_round_timings`` split.  All values are plain
    Python scalars/dicts, safe to JSON-persist into job records.
    """
    report = None
    reports = getattr(router.engine, "round_reports", None)
    if reports:
        report = reports[-1]
    timings = getattr(router.engine, "last_round_timings", None) or {}
    congestion = router.congestion
    # The priced congestion cost of the current solution: usage weighted by
    # the live edge costs -- the per-round convergence quantity next to
    # overflow.  One O(E) dot per round, same order as the price update.
    cost = float(np.dot(router.prices.edge_costs(congestion), congestion.usage))
    timing_report = router.timing_report
    sample: Dict[str, object] = {
        "round": round_index + 1,
        "rounds_total": int(router.config.num_rounds),
        "overflow": float(congestion.overflow()),
        "cost": round(cost, 6),
        "worst_slack": (
            float(timing_report.worst_slack) if timing_report is not None else None
        ),
        "oracle_calls": int(report.nets_routed) if report else 0,
        "nets_cached": int(report.nets_cached) if report else 0,
        "nets_replayed": int(report.nets_replayed) if report else 0,
        "num_batches": int(report.num_batches) if report else 0,
        "walltime_seconds": (
            round(float(report.walltime_seconds), 6) if report else 0.0
        ),
        # Sharded flows only (empty/zero in the single-region flow): the
        # per-region walltime split, the seam pass, and the pool/IPC
        # overhead of the interior pass.
        "region_seconds": {
            str(key): round(float(value), 6)
            for key, value in (timings.get("regions") or {}).items()
        },
        "seam_seconds": round(float(timings.get("seam_seconds", 0.0)), 6),
        "overhead_seconds": round(float(timings.get("overhead_seconds", 0.0)), 6),
    }
    return sample
