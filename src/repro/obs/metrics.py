"""Process-safe metrics registry: counters, gauges, and histograms.

The registry is the *always-on* half of observability: counters are cheap
enough to increment unconditionally (a dict update under a lock), so hot
paths record oracle calls, cache hits, and A* pops whether or not a trace
file is configured.  Tracing (:mod:`repro.obs.trace`) is the opt-in half.

Cross-process aggregation works by *snapshot shipping*, not by shared
memory: a pool worker swaps in a fresh local registry before routing
(:func:`swap_registry` / :func:`use_registry`), routes, and attaches
``registry.snapshot()`` to the result it already sends back (the engine's
shard result tuple, the shard layer's ``RegionOutcome``).  The parent
merges the snapshots **in fixed region/shard order** so pooled runs report
exactly the counters a serial run would — counter merging is integer
addition and therefore order-independent, but histograms fold min/max/sum
in a defined order too, keeping the merged snapshot deterministic for the
deterministic subset of metrics.

Two registries exist per process:

* the *default* registry — the process-lifetime aggregate dumped by the
  serve ``metrics`` op and appended to a trace file on close;
* the *active* registry — what :func:`inc` et al write to.  Normally the
  default one; temporarily a local one inside pool workers.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "SAMPLE_WINDOW",
    "MetricsRegistry",
    "default_registry",
    "active_registry",
    "swap_registry",
    "use_registry",
    "inc",
    "set_gauge",
    "observe",
    "merge_snapshot",
]

#: Raw-sample retention window per histogram: quantiles are computed over
#: the most recent ``SAMPLE_WINDOW`` observations (drop-oldest).  Because
#: workers ship samples back in their snapshots and parents merge snapshots
#: in fixed region order, the retained sequence -- and therefore every
#: quantile -- is identical between serial and pooled runs.
SAMPLE_WINDOW = 512

_QUANTILE_KEYS = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _quantiles(samples: List[float]) -> Dict[str, float]:
    """Deterministic nearest-rank p50/p95/p99 of ``samples``."""
    ordered = sorted(samples)
    count = len(ordered)
    out: Dict[str, float] = {}
    for key, p in _QUANTILE_KEYS:
        rank = max(1, math.ceil(p * count))
        out[key] = ordered[min(rank, count) - 1]
    return out


class MetricsRegistry:
    """A thread-safe bag of counters, gauges, and summary histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max, recent-samples]
        self._hists: Dict[str, list] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [1, value, value, value, [value]]
            else:
                hist[0] += 1
                hist[1] += value
                hist[2] = min(hist[2], value)
                hist[3] = max(hist[3], value)
                hist[4].append(value)
                if len(hist[4]) > SAMPLE_WINDOW:
                    del hist[4][: len(hist[4]) - SAMPLE_WINDOW]

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy, safe to pickle across process boundaries.

        Histogram entries carry nearest-rank p50/p95/p99 over the retained
        sample window plus the raw ``samples`` list itself so that merging
        snapshots (pool workers -> parent) can recompute quantiles over the
        combined sequence.
        """
        with self._lock:
            histograms: Dict[str, Dict[str, object]] = {}
            for name, h in self._hists.items():
                entry: Dict[str, object] = {
                    "count": h[0],
                    "total": h[1],
                    "min": h[2],
                    "max": h[3],
                    "samples": list(h[4]),
                }
                entry.update(_quantiles(h[4]))
                histograms[name] = entry
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": histograms,
            }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histogram counts/totals add; gauges take the incoming
        value (last writer wins, which is why callers merge in fixed
        region order); histogram min/max widen.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, incoming in snapshot.get("histograms", {}).items():
                samples = list(incoming.get("samples") or [])
                hist = self._hists.get(name)
                if hist is None:
                    self._hists[name] = [
                        incoming["count"],
                        incoming["total"],
                        incoming["min"],
                        incoming["max"],
                        samples,
                    ]
                    hist = self._hists[name]
                else:
                    hist[0] += incoming["count"]
                    hist[1] += incoming["total"]
                    hist[2] = min(hist[2], incoming["min"])
                    hist[3] = max(hist[3], incoming["max"])
                    hist[4].extend(samples)
                if len(hist[4]) > SAMPLE_WINDOW:
                    del hist[4][: len(hist[4]) - SAMPLE_WINDOW]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


_DEFAULT = MetricsRegistry()
_ACTIVE = _DEFAULT


def default_registry() -> MetricsRegistry:
    """The process-lifetime aggregate registry."""
    return _DEFAULT


def active_registry() -> MetricsRegistry:
    """The registry hot-path helpers currently write to."""
    return _ACTIVE


def swap_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the active one (``None`` = the default).

    Returns the previously active registry so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else _DEFAULT
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the active registry to ``registry`` for the ``with`` body."""
    previous = swap_registry(registry)
    try:
        yield registry
    finally:
        swap_registry(previous)


def inc(name: str, amount: int = 1) -> None:
    _ACTIVE.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    _ACTIVE.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    _ACTIVE.observe(name, value)


def merge_snapshot(snapshot: Optional[Dict[str, object]]) -> None:
    """Fold a worker snapshot into the active registry."""
    if snapshot:
        _ACTIVE.merge(snapshot)
