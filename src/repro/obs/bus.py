"""In-process pub/sub event bus: the live half of observability.

The :class:`EventBus` fans structured events (plain dicts) out to any
number of subscribers.  It is built for exactly one situation: a routing
thread publishing progress while consumers of unknown speed -- ``watch``
socket handlers, tests, future cluster heartbeats -- read along.  The
design contract is therefore **publish never blocks**: every subscription
owns a bounded queue and an over-full queue drops its *oldest* event (the
newest state is the one a live watcher wants), counting the loss on the
``bus.dropped`` metric and the subscription's own ``dropped`` counter.  A
stalled subscriber can lose events; it can never stall routing.

Events are flat JSON-serialisable dicts.  Every published event carries:

* ``schema`` -- the pinned :data:`EVENT_SCHEMA_VERSION`;
* ``seq`` -- a bus-wide monotonically increasing sequence number
  (subscribers detect drops by gaps);
* ``event`` -- the event name (``round``, ``region_done``, ``seam_done``,
  ``pool_degraded``, ``job_state``);
* ``time`` -- a wall-clock stamp (display only; durations inside event
  payloads come from the monotonic clock);
* any attributes of the ambient :func:`bus_context` of the publishing
  thread (the serve daemon scopes each job's thread with its ``job_id``),
  then the publisher's own payload.

Like tracing, the bus is single-process: pool workers never publish (their
measurements travel back as metric snapshots); the daemon publishes from
the threads that own its jobs.  A module-global bus slot mirrors the
tracer (:func:`configure_bus` / :func:`get_bus` / :func:`publish`) so
deep layers -- the shard coordinator, the pool-degradation logger -- can
emit events with one global read and zero cost when no bus is installed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from . import metrics as _metrics

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "DEFAULT_QUEUE_DEPTH",
    "Subscription",
    "EventBus",
    "configure_bus",
    "get_bus",
    "publish",
    "bus_context",
]

#: Pinned event schema version, stamped onto every published event and the
#: ``watch`` stream's acknowledgement line.  Consumers refuse versions they
#: do not know rather than mis-parsing.
EVENT_SCHEMA_VERSION = 1

#: Default per-subscription queue bound.
DEFAULT_QUEUE_DEPTH = 256


class Subscription:
    """One subscriber's bounded event queue (drop-oldest on overflow)."""

    def __init__(
        self,
        bus: "EventBus",
        maxlen: int,
        match: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> None:
        if maxlen < 1:
            raise ValueError("subscription queue depth must be positive")
        self._bus = bus
        self._match = match
        self.maxlen = maxlen
        self._cond = threading.Condition()
        self._queue: deque = deque()
        #: Events this subscription lost to its queue bound.
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Dict[str, object]) -> None:
        """Called by the bus from the *publisher's* thread; never blocks.

        A filter exception counts as "no match" -- a broken subscriber
        predicate must not take the publishing thread down.
        """
        if self._match is not None:
            try:
                if not self._match(event):
                    return
            except Exception:
                return
        with self._cond:
            if self.closed:
                return
            if len(self._queue) >= self.maxlen:
                self._queue.popleft()
                self.dropped += 1
                _metrics.inc("bus.dropped")
            self._queue.append(event)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, object]]:
        """The oldest queued event, or ``None`` after ``timeout`` seconds
        (``timeout=None`` returns immediately when the queue is empty)."""
        with self._cond:
            if not self._queue and timeout is not None and not self.closed:
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[Dict[str, object]]:
        """All queued events at once (oldest first)."""
        with self._cond:
            events = list(self._queue)
            self._queue.clear()
            return events

    def close(self) -> None:
        """Unsubscribe (idempotent); a blocked :meth:`get` wakes up."""
        self._bus.unsubscribe(self)


class EventBus:
    """Thread-safe fan-out of events to bounded subscriber queues."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self._seq = 0
        #: Total events published over the bus's lifetime.
        self.published = 0

    def subscribe(
        self,
        maxlen: int = DEFAULT_QUEUE_DEPTH,
        match: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> Subscription:
        """A new subscription; ``match`` pre-filters events (evaluated on
        the publisher's thread, so keep it cheap)."""
        sub = Subscription(self, maxlen, match)
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
        with sub._cond:
            sub.closed = True
            sub._cond.notify_all()

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def publish(self, event: str, **payload: object) -> Dict[str, object]:
        """Stamp and fan one event out to every subscriber; never blocks.

        The payload wins over the thread's :func:`bus_context` attributes,
        which win over the stamps -- except ``schema``/``seq``/``event``,
        which the bus owns.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
            self.published += 1
            subs = list(self._subs)
        record: Dict[str, object] = {"time": time.time()}
        context = getattr(_CONTEXT, "attrs", None)
        if context:
            record.update(context)
        record.update(payload)
        record["schema"] = EVENT_SCHEMA_VERSION
        record["seq"] = seq
        record["event"] = event
        for sub in subs:
            sub._offer(record)
        return record


# --------------------------------------------------------------------------
# The process-global bus slot (mirrors the tracer): deep layers publish via
# module-level publish(), which is a no-op single global read when no bus is
# installed -- the zero-cost-when-disabled contract of the obs package.
# --------------------------------------------------------------------------

_GLOBAL: Optional[EventBus] = None
_CONTEXT = threading.local()


def configure_bus(bus: Optional[EventBus]) -> Optional[EventBus]:
    """Install ``bus`` as the process-global one (``None`` uninstalls).

    Returns the previously installed bus.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = bus
    return previous


def get_bus() -> Optional[EventBus]:
    """The installed global bus, or ``None`` while eventing is disabled."""
    return _GLOBAL


def publish(event: str, **payload: object) -> Optional[Dict[str, object]]:
    """Publish on the global bus (dropped when no bus is installed)."""
    bus = _GLOBAL
    if bus is None:
        return None
    return bus.publish(event, **payload)


@contextmanager
def bus_context(**attrs: object) -> Iterator[None]:
    """Merge ``attrs`` into every event published from this thread.

    The serve daemon wraps each job's execution in
    ``bus_context(job_id=...)`` so events published by deeper layers (the
    shard coordinator's ``region_done``/``seam_done``, the pool
    degradation warning) carry the owning job without threading ids
    through every call signature.  Contexts nest; inner values shadow.
    """
    previous = getattr(_CONTEXT, "attrs", None)
    merged = dict(previous or {})
    merged.update(attrs)
    _CONTEXT.attrs = merged
    try:
        yield
    finally:
        _CONTEXT.attrs = previous
