"""Structured tracing: spans and events written as JSON lines.

A trace is one append-only JSON-lines file.  The first record is a header
pinning the schema version; every later record is a ``span`` (a named,
timed, attributed interval with a parent pointer), an ``event`` (a point
in time), or a final ``metrics`` dump written on close.  The span parent
pointers reconstruct the full round -> region -> batch tree of a routing
run, which is what ``python -m repro trace summarize`` renders.

Tracing is **disabled by default** and designed for near-zero overhead in
that state: :func:`span` returns one shared no-op context manager and
:func:`event` returns immediately, so instrumented hot paths pay a single
module-global read when no trace file is configured.  Worker processes of
the engine and shard pools never inherit the parent's tracer -- their
measurements travel back inside the existing task/outcome transports as
metric snapshots (see :mod:`repro.obs.metrics`), not as trace records, so
the trace file has exactly one writer process.

Thread-safety: the daemon traces concurrent jobs from several threads.
Record writes are serialised by a lock and the span stack (which provides
parent ids) is thread-local, so interleaved spans from different threads
nest correctly within their own thread.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_FORMAT",
    "Span",
    "Tracer",
    "get_tracer",
    "configure_tracing",
    "close_tracing",
    "span",
    "event",
]

#: Pinned trace schema version; readers refuse other versions rather than
#: mis-parsing (see :mod:`repro.obs.summary`).
TRACE_SCHEMA_VERSION = 1
TRACE_FORMAT = "repro-trace"


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One named, timed interval of a trace (used as a context manager)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_started", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes discovered mid-span (e.g. routed-net counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        # Wall stamp for display/alignment only; the duration below comes
        # from the monotonic clock so NTP steps can't produce negative or
        # inflated span times.
        self._wall = time.time()
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._started
        self._tracer._pop(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._emit(
            {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self._wall,
                "duration": duration,
                "tid": threading.get_ident(),
                "attrs": self.attrs,
            }
        )
        return False


class Tracer:
    """A JSON-lines trace writer bound to one output file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack = threading.local()
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "w", encoding="utf-8")
        self._emit(
            {
                "type": "trace_header",
                "format": TRACE_FORMAT,
                "schema": TRACE_SCHEMA_VERSION,
                "pid": os.getpid(),
                "created": time.time(),
            }
        )

    # ------------------------------------------------------------------ API
    def span(self, name: str, **attrs: object) -> Span:
        """A new span; the record is written when the span exits."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Write one point-in-time record (parented to the current span)."""
        stack = getattr(self._stack, "spans", None)
        parent = stack[-1].span_id if stack else None
        self._emit(
            {
                "type": "event",
                "name": name,
                "time": time.time(),
                "parent_id": parent,
                "tid": threading.get_ident(),
                "attrs": attrs,
            }
        )

    def close(self, metrics_snapshot: Optional[Dict[str, object]] = None) -> None:
        """Write the final metrics dump and seal the file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            if metrics_snapshot is not None:
                self._write({"type": "metrics", "snapshot": metrics_snapshot})
            self._write({"type": "trace_end", "closed": time.time()})
            self._closed = True
            self._file.close()

    # ------------------------------------------------------------ internals
    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        with self._lock:
            self._next_id += 1
            span.span_id = self._next_id
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", [])
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exits must not corrupt the stack
            stack.remove(span)

    def _write(self, record: Dict[str, object]) -> None:
        self._file.write(json.dumps(record, default=str) + "\n")

    def _emit(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._closed:
                return
            self._write(record)
            self._file.flush()


# --------------------------------------------------------------------------
# The process-global tracer.  One per process, installed by the CLI's
# --trace flag (or a daemon job's trace param); ``None`` = tracing disabled.
# --------------------------------------------------------------------------

_GLOBAL: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` while tracing is disabled."""
    return _GLOBAL


def configure_tracing(path: str) -> Tracer:
    """Install a process-global tracer writing to ``path``.

    Replaces (and closes) any previously installed tracer.
    """
    global _GLOBAL
    if _GLOBAL is not None:
        _GLOBAL.close()
    _GLOBAL = Tracer(path)
    return _GLOBAL


def close_tracing(metrics_snapshot: Optional[Dict[str, object]] = None) -> None:
    """Close and uninstall the global tracer (no-op when none is active)."""
    global _GLOBAL
    if _GLOBAL is not None:
        _GLOBAL.close(metrics_snapshot)
        _GLOBAL = None


def span(name: str, **attrs: object):
    """A span on the global tracer, or the shared no-op when disabled."""
    tracer = _GLOBAL
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: object) -> None:
    """An event on the global tracer (dropped when tracing is disabled)."""
    tracer = _GLOBAL
    if tracer is not None:
        tracer.event(name, **attrs)
