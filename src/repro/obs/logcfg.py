"""Stdlib-logging wiring and structured degradation records.

All loggers in this package hang off the ``repro`` root so one
:func:`configure_logging` call (the CLI ``--log-level`` flag) controls the
whole tree.  Propagation stays on so ``caplog``/host applications keep
seeing records; we only attach our own stream handler once.

:func:`log_pool_degradation` is the single chokepoint for "a worker pool
could not be created, degrading to serial" — previously a bare
``warnings.warn``.  It emits a WARNING log record carrying the backend,
requested start method, and the originating error as structured fields,
and mirrors the same fields onto the active trace as a ``pool_degraded``
event so degraded runs are distinguishable in a trace file after the fact.
"""

from __future__ import annotations

import logging
from typing import Optional

from . import bus as _bus
from . import trace

__all__ = ["configure_logging", "log_pool_degradation", "get_logger"]

_HANDLER_TAG = "_repro_obs_handler"
_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(name if name.startswith("repro") else f"repro.{name}")


def configure_logging(level: str = "info") -> logging.Logger:
    """Point the ``repro`` logger tree at stderr with the given level."""
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    root = logging.getLogger("repro")
    root.setLevel(numeric)
    if not any(getattr(h, _HANDLER_TAG, False) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
    return root


def log_pool_degradation(
    backend: str,
    start_method: Optional[str],
    reason: BaseException,
    action: str,
) -> None:
    """Record a worker-pool creation failure as log record + trace event.

    ``action`` finishes the sentence "multiprocessing pool unavailable;
    ..." — e.g. "engine batches degrade to in-process routing".
    """
    logger = logging.getLogger("repro.obs.pool")
    logger.warning(
        "multiprocessing pool unavailable (%s); %s "
        "[backend=%s start_method=%s reason=%s]",
        reason,
        action,
        backend,
        start_method or "default",
        type(reason).__name__,
    )
    trace.event(
        "pool_degraded",
        backend=backend,
        start_method=start_method or "default",
        reason=type(reason).__name__,
        detail=str(reason),
        action=action,
    )
    _bus.publish(
        "pool_degraded",
        backend=backend,
        start_method=start_method or "default",
        reason=type(reason).__name__,
        action=action,
    )
