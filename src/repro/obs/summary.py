"""Trace-file analysis: ``python -m repro trace summarize|export PATH``.

Reads a JSON-lines trace written by :mod:`repro.obs.trace`, validates the
pinned schema version, and renders per-phase time breakdowns (count /
total / mean / max per span name), the top-k slowest nets (from per-net
``net`` events, which carry oracle walltimes), and the final counter /
histogram dump when the trace was closed cleanly.  ``trace export
--format chrome`` converts the same file into the Chrome trace-event
format (see :mod:`repro.obs.export`) for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .export import chrome_trace
from .trace import TRACE_FORMAT, TRACE_SCHEMA_VERSION

__all__ = ["load_trace", "summarize", "render", "main"]


def load_trace(path: str) -> List[Dict[str, object]]:
    """Parse a trace file, enforcing the header's format/schema pin."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            records.append(record)
    if not records:
        # An empty file is a legal (degenerate) trace: the writer may have
        # been killed before the header flushed.  Summaries render it as
        # "no spans" rather than refusing.
        return records
    if records[0].get("type") != "trace_header":
        raise ValueError(f"{path}: not a repro trace (missing trace_header)")
    header = records[0]
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: unknown trace format {header.get('format')!r}")
    if header.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema {header.get('schema')!r} not supported "
            f"(reader expects {TRACE_SCHEMA_VERSION})"
        )
    return records


def summarize(records: Sequence[Dict[str, object]], top: int = 10) -> Dict[str, object]:
    """Aggregate a parsed trace into phase/net/counter summaries."""
    phases: Dict[str, Dict[str, float]] = {}
    nets: List[Dict[str, object]] = []
    metrics_snapshot: Optional[Dict[str, object]] = None
    span_count = 0
    event_count = 0
    complete = False
    for record in records:
        kind = record.get("type")
        if kind == "span":
            span_count += 1
            name = str(record.get("name"))
            duration = float(record.get("duration", 0.0))
            phase = phases.setdefault(
                name, {"count": 0, "total": 0.0, "max": 0.0}
            )
            phase["count"] += 1
            phase["total"] += duration
            phase["max"] = max(phase["max"], duration)
        elif kind == "event":
            event_count += 1
            if record.get("name") == "net":
                attrs = record.get("attrs") or {}
                if "seconds" in attrs:
                    nets.append(attrs)
        elif kind == "metrics":
            metrics_snapshot = record.get("snapshot")
        elif kind == "trace_end":
            complete = True
    for phase in phases.values():
        phase["mean"] = phase["total"] / phase["count"] if phase["count"] else 0.0
    nets.sort(key=lambda item: float(item.get("seconds", 0.0)), reverse=True)
    return {
        "spans": span_count,
        "events": event_count,
        "complete": complete,
        "phases": phases,
        "slow_nets": nets[:top],
        "metrics": metrics_snapshot,
    }


def render(summary: Dict[str, object]) -> str:
    """Human-readable report for a :func:`summarize` result."""
    lines: List[str] = []
    if not summary["spans"] and not summary["events"]:
        lines.append("trace: no spans recorded")
        return "\n".join(lines)
    status = "complete" if summary["complete"] else "TRUNCATED (no trace_end)"
    lines.append(
        f"trace: {summary['spans']} spans, {summary['events']} events, {status}"
    )
    phases: Dict[str, Dict[str, float]] = summary["phases"]  # type: ignore[assignment]
    if phases:
        lines.append("")
        lines.append(f"{'phase':<18} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}")
        ordered = sorted(phases.items(), key=lambda kv: kv[1]["total"], reverse=True)
        for name, stats in ordered:
            lines.append(
                f"{name:<18} {stats['count']:>7.0f} {stats['total']:>10.4f} "
                f"{stats['mean']:>10.4f} {stats['max']:>10.4f}"
            )
    slow_nets = summary["slow_nets"]
    if slow_nets:
        lines.append("")
        lines.append("slowest nets:")
        for attrs in slow_nets:
            lines.append(
                f"  {attrs.get('net', '?'):<24} {float(attrs.get('seconds', 0.0)):.5f}s"
                f"  sinks={attrs.get('sinks', '?')}"
            )
    metrics = summary.get("metrics")
    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        histograms = metrics.get("histograms", {})
        if histograms:
            lines.append("")
            lines.append(
                f"{'histogram':<24} {'count':>7} {'mean':>10} {'p50':>10} "
                f"{'p95':>10} {'p99':>10} {'max':>10}"
            )
            for name in sorted(histograms):
                hist = histograms[name]
                count = float(hist.get("count", 0))
                mean = float(hist.get("total", 0.0)) / count if count else 0.0
                lines.append(
                    f"{name:<24} {count:>7.0f} {mean:>10.5f} "
                    f"{float(hist.get('p50', 0.0)):>10.5f} "
                    f"{float(hist.get('p95', 0.0)):>10.5f} "
                    f"{float(hist.get('p99', 0.0)):>10.5f} "
                    f"{float(hist.get('max', 0.0)):>10.5f}"
                )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace", description="Inspect repro trace files."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="Per-phase time breakdown for a trace file.")
    p_sum.add_argument("path", help="Path to a JSON-lines trace file.")
    p_sum.add_argument("--top", type=int, default=10, help="How many slow nets to list.")
    p_sum.add_argument("--json", action="store_true", help="Emit the summary as JSON.")
    p_exp = sub.add_parser(
        "export", help="Convert a trace file for external viewers."
    )
    p_exp.add_argument("path", help="Path to a JSON-lines trace file.")
    p_exp.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="Output format (chrome = Chrome trace-event JSON for Perfetto).",
    )
    p_exp.add_argument(
        "--output",
        "-o",
        default=None,
        help="Write to this file instead of stdout.",
    )
    args = parser.parse_args(argv)

    try:
        records = load_trace(args.path)
    except (OSError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")
    try:
        if args.command == "export":
            document = chrome_trace(records)
            text = json.dumps(document, indent=2, sort_keys=True)
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
                print(
                    f"wrote {len(document['traceEvents'])} events to {args.output}",
                    file=sys.stderr,
                )
            else:
                print(text)
            return 0
        summary = summarize(records, top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render(summary))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe early; not an error.
        pass
    return 0
