"""Lagrangean / multiplicative-weights price updates for global routing.

Timing-constrained global routing is solved by Lagrangean relaxation
(resource sharing): congestion capacities and timing constraints are relaxed
into prices, and the relaxed problem decomposes into one cost-distance
Steiner tree problem per net (paper Eq. (1)).  This module maintains those
prices:

* **edge prices** grow multiplicatively with the congestion of each routing
  edge, so that subsequent Steiner trees avoid overused regions, and
* **sink delay weights** grow with the (negative) slack of each sink, so that
  critical sinks get short, fast paths -- these weights are exactly the
  ``w(t)`` of the cost-distance objective.

The update rules follow the multiplicative-weights scheme of Held et al.
(TCAD 2018) in simplified form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.grid.congestion import CongestionMap
from repro.grid.graph import RoutingGraph
from repro.timing.sta import TimingReport

__all__ = ["ResourceSharingConfig", "ResourceSharingPrices"]


@dataclass(frozen=True)
class ResourceSharingConfig:
    """Parameters of the price update rules.

    Attributes
    ----------
    edge_price_strength:
        Exponent scale of the multiplicative edge price update; larger values
        react more aggressively to congestion.
    max_edge_price:
        Upper bound on edge prices (keeps costs finite on hopeless overflows).
    base_delay_weight:
        Delay weight of a sink with ample positive slack.
    critical_delay_weight:
        Additional weight given to a sink at the worst observed slack.
    weight_smoothing:
        Convex combination factor for weight updates between rounds
        (1.0 = replace, 0.0 = keep old weights).
    """

    edge_price_strength: float = 1.5
    max_edge_price: float = 64.0
    base_delay_weight: float = 0.15
    critical_delay_weight: float = 2.0
    weight_smoothing: float = 0.7

    def __post_init__(self) -> None:
        if self.edge_price_strength < 0:
            raise ValueError("edge_price_strength must be non-negative")
        if self.max_edge_price < 1:
            raise ValueError("max_edge_price must be at least 1")
        if self.base_delay_weight < 0 or self.critical_delay_weight < 0:
            raise ValueError("delay weights must be non-negative")
        if not 0.0 <= self.weight_smoothing <= 1.0:
            raise ValueError("weight_smoothing must lie in [0, 1]")


class ResourceSharingPrices:
    """Holds and updates edge prices and per-sink delay weights."""

    def __init__(
        self,
        graph: RoutingGraph,
        num_sinks_per_net: Sequence[int],
        config: Optional[ResourceSharingConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config or ResourceSharingConfig()
        self.edge_prices = np.ones(graph.num_edges, dtype=np.float64)
        self.delay_weights: List[List[float]] = [
            [self.config.base_delay_weight] * n for n in num_sinks_per_net
        ]

    # ------------------------------------------------------------- queries
    def edge_costs(self, congestion: CongestionMap) -> np.ndarray:
        """Current per-edge congestion cost ``c(e)`` for the Steiner oracles."""
        return congestion.edge_costs(self.edge_prices)

    def weights_of(self, net_index: int) -> List[float]:
        """Current delay weights ``w(t)`` of one net's sinks."""
        return list(self.delay_weights[net_index])

    # -------------------------------------------------------------- update
    def update_edge_prices(self, congestion: CongestionMap) -> None:
        """Multiplicative price update from the current edge congestion."""
        utilisation = congestion.congestion()
        factor = np.exp(self.config.edge_price_strength * np.clip(utilisation - 0.5, 0.0, None))
        self.edge_prices = np.minimum(self.edge_prices * factor, self.config.max_edge_price)

    def update_delay_weights(self, report: TimingReport) -> None:
        """Update sink delay weights from the latest timing report.

        Sinks with negative or near-critical slack receive larger weights;
        sinks with comfortable slack fall back towards the base weight.  The
        mapping is normalised by the worst observed slack so the weights stay
        in a stable range across instances.
        """
        cfg = self.config
        worst = min(report.worst_slack, -1e-9)
        for net_index, weights in enumerate(self.delay_weights):
            slacks = report.sink_slacks.get(net_index)
            if slacks is None:
                continue
            for sink_index in range(len(weights)):
                slack = slacks[sink_index]
                if slack == float("inf"):
                    target = cfg.base_delay_weight
                else:
                    criticality = max(0.0, -slack / -worst) if worst < 0 else 0.0
                    # Sinks close to critical (small positive slack) also get
                    # a mild push so they do not become critical next round.
                    if slack >= 0:
                        closeness = max(0.0, 1.0 - slack / max(1.0, -worst * 2))
                        criticality = max(criticality, 0.25 * closeness)
                    target = cfg.base_delay_weight + cfg.critical_delay_weight * criticality
                old = weights[sink_index]
                weights[sink_index] = (
                    (1.0 - cfg.weight_smoothing) * old + cfg.weight_smoothing * target
                )

    def total_edge_price(self) -> float:
        """Sum of all edge prices (a monotone progress indicator)."""
        return float(np.sum(self.edge_prices))
