"""Netlist model for timing-constrained global routing.

A :class:`Netlist` is a collection of :class:`Net` objects (one driver pin
and one or more sink pins, all placed on the global routing grid) plus the
combinational *stage* structure: a sink pin may drive the driver of another
net through a cell with a fixed delay.  Stages define the timing DAG used by
:class:`repro.timing.sta.StaticTimingAnalysis`; sink pins that do not drive
another net are timing endpoints constrained by the clock period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.geometry import GridPoint
from repro.grid.graph import RoutingGraph
from repro.timing.sta import StaticTimingAnalysis

__all__ = ["Pin", "Net", "Stage", "Netlist"]


@dataclass(frozen=True)
class Pin:
    """A placed pin of a net."""

    name: str
    position: GridPoint


@dataclass
class Net:
    """A signal net: one driver (root) pin and one or more sink pins."""

    name: str
    driver: Pin
    sinks: List[Pin]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name} has no sinks")

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)

    def pins(self) -> List[Pin]:
        """Driver followed by all sinks."""
        return [self.driver] + list(self.sinks)

    def half_perimeter(self) -> int:
        """HPWL of the net's pins (a lower bound on its wire length)."""
        xs = [p.position.x for p in self.pins()]
        ys = [p.position.y for p in self.pins()]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


@dataclass(frozen=True)
class Stage:
    """A combinational stage: ``(net, sink)`` drives the driver of ``to_net``."""

    from_net: int
    from_sink: int
    to_net: int
    cell_delay: float


@dataclass
class Netlist:
    """A routable, timeable netlist.

    Attributes
    ----------
    name:
        Instance name (e.g. ``"c3"``).
    nets:
        The nets, indexed by position in this list.
    stages:
        Combinational stage edges between nets.
    clock_period:
        Required arrival time (ps) at every timing endpoint.
    """

    name: str
    nets: List[Net]
    stages: List[Stage] = field(default_factory=list)
    clock_period: float = 500.0

    def __post_init__(self) -> None:
        seen = set()
        for net in self.nets:
            if net.name in seen:
                raise ValueError(
                    f"duplicate net name {net.name!r}; net names key RNG "
                    "streams and replay memos, so they must be unique"
                )
            seen.add(net.name)
        for stage in self.stages:
            self._check_stage(stage)

    def _check_stage(self, stage: Stage) -> None:
        if not 0 <= stage.from_net < len(self.nets):
            raise ValueError(f"stage references unknown net {stage.from_net}")
        if not 0 <= stage.to_net < len(self.nets):
            raise ValueError(f"stage references unknown net {stage.to_net}")
        if not 0 <= stage.from_sink < self.nets[stage.from_net].num_sinks:
            raise ValueError(
                f"stage references unknown sink {stage.from_sink} of net {stage.from_net}"
            )
        if stage.cell_delay < 0:
            raise ValueError("cell delay must be non-negative")

    # ------------------------------------------------------------- queries
    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net_size_histogram(self) -> Dict[str, int]:
        """Histogram of net sizes using the paper's sink-count buckets."""
        buckets = {"1-2": 0, "3-5": 0, "6-14": 0, "15-29": 0, ">=30": 0}
        for net in self.nets:
            n = net.num_sinks
            if n <= 2:
                buckets["1-2"] += 1
            elif n <= 5:
                buckets["3-5"] += 1
            elif n <= 14:
                buckets["6-14"] += 1
            elif n <= 29:
                buckets["15-29"] += 1
            else:
                buckets[">=30"] += 1
        return buckets

    def endpoint_sinks(self) -> List[Tuple[int, int]]:
        """All ``(net, sink)`` pairs that are timing endpoints (drive no stage)."""
        driving = {(s.from_net, s.from_sink) for s in self.stages}
        endpoints = []
        for net_index, net in enumerate(self.nets):
            for sink_index in range(net.num_sinks):
                if (net_index, sink_index) not in driving:
                    endpoints.append((net_index, sink_index))
        return endpoints

    # -------------------------------------------------------------- timing
    def timing_graph(self) -> StaticTimingAnalysis:
        """Build the static timing analysis structure for this netlist."""
        sta = StaticTimingAnalysis([net.num_sinks for net in self.nets])
        for stage in self.stages:
            sta.add_stage(stage.from_net, stage.from_sink, stage.to_net, stage.cell_delay)
        for net_index, sink_index in self.endpoint_sinks():
            sta.set_endpoint(net_index, sink_index, self.clock_period)
        return sta

    # ------------------------------------------------------------- subsets
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Netlist":
        """A netlist containing only the nets at ``indices`` (order kept).

        Stages are retained when both endpoint nets survive and their net
        indices are remapped; stages crossing the subset boundary are
        dropped, which relaxes the timing constraints they carried (the
        shard fan-out path documents this).  Nets are shared, not copied --
        callers must not mutate them.
        """
        index_map = {old: new for new, old in enumerate(indices)}
        if len(index_map) != len(indices):
            raise ValueError("subset indices must be unique")
        nets = [self.nets[i] for i in indices]
        stages = [
            Stage(
                index_map[s.from_net], s.from_sink, index_map[s.to_net], s.cell_delay
            )
            for s in self.stages
            if s.from_net in index_map and s.to_net in index_map
        ]
        return Netlist(
            name=name or self.name,
            nets=nets,
            stages=stages,
            clock_period=self.clock_period,
        )

    # ------------------------------------------------------------- mapping
    def net_terminals(self, graph: RoutingGraph, net_index: int) -> Tuple[int, List[int]]:
        """Graph node of the driver and of every sink of one net."""
        net = self.nets[net_index]
        root = graph.point_index(net.driver.position)
        sinks = [graph.point_index(p.position) for p in net.sinks]
        return root, sinks

    def validate_on_graph(self, graph: RoutingGraph) -> None:
        """Check that all pins lie inside the routing graph."""
        for net in self.nets:
            for pin in net.pins():
                p = pin.position
                if not (0 <= p.x < graph.nx and 0 <= p.y < graph.ny):
                    raise ValueError(
                        f"pin {pin.name} of net {net.name} at {p} lies outside the "
                        f"{graph.nx}x{graph.ny} grid"
                    )
                if not 0 <= p.layer < graph.num_layers:
                    raise ValueError(
                        f"pin {pin.name} of net {net.name} uses layer {p.layer} "
                        f"but the graph has {graph.num_layers} layers"
                    )
