"""Timing-constrained global routing framework.

This package provides the routing flow the paper plugs its Steiner oracle
into (following Held et al., "Global Routing With Timing Constraints",
TCAD 2018):

* :mod:`repro.router.netlist` -- nets, pins, and the combinational stage
  structure that defines the timing graph.
* :mod:`repro.router.resource_sharing` -- the Lagrangean / multiplicative
  weights price updates for edge capacities and sink delay constraints.
* :mod:`repro.router.router` -- the :class:`GlobalRouter` driving the flow:
  per-net Steiner oracle calls, congestion accumulation, price and delay
  weight updates, and final metrics.
* :mod:`repro.router.metrics` -- the result record (WS, TNS, ACE4, wire
  length, vias, walltime) reported in paper Tables IV and V.
"""

from repro.router.netlist import Pin, Net, Netlist
from repro.router.resource_sharing import ResourceSharingPrices, ResourceSharingConfig
from repro.router.metrics import RoutingResult
from repro.router.router import GlobalRouter, GlobalRouterConfig

__all__ = [
    "Pin",
    "Net",
    "Netlist",
    "ResourceSharingPrices",
    "ResourceSharingConfig",
    "RoutingResult",
    "GlobalRouter",
    "GlobalRouterConfig",
]
