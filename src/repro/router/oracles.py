"""Registry of Steiner oracles by their paper-table abbreviation.

One place maps the ``CD``/``L1``/``SL``/``PD`` names used in result tables,
CLI flags, and serve-job parameters to oracle classes, so the command line
and the serve daemon cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.baselines.prim_dijkstra import PrimDijkstraOracle
from repro.baselines.rsmt import RectilinearSteinerOracle
from repro.baselines.shallow_light import ShallowLightOracle
from repro.core.cost_distance import CostDistanceSolver
from repro.core.oracle import SteinerOracle

__all__ = ["ORACLES", "make_oracle"]

ORACLES: Dict[str, Type[SteinerOracle]] = {
    "CD": CostDistanceSolver,
    "L1": RectilinearSteinerOracle,
    "SL": ShallowLightOracle,
    "PD": PrimDijkstraOracle,
}


def make_oracle(name: str) -> SteinerOracle:
    """Instantiate a Steiner oracle by its table abbreviation."""
    try:
        return ORACLES[name]()
    except KeyError:
        raise ValueError(f"unknown oracle {name!r}; choose from {sorted(ORACLES)}")
