"""Result records of a global routing run.

A :class:`RoutingResult` carries exactly the columns of paper Tables IV/V:
worst slack (WS), total negative slack (TNS), the ACE4 congestion metric,
total wire length, via count, and wall time, plus a few extra diagnostics
(overflow, objective sum) that are useful in tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RoutingResult", "PARITY_FIELDS", "format_result_row"]

#: The deterministic metric fields of :class:`RoutingResult` -- everything
#: except the wall-clock time.  Bit-exactness contracts (engine backends,
#: shard parity mode, the region pool) are asserted over exactly these
#: fields; tests and benchmarks import this tuple so the contract cannot
#: silently diverge between batteries.
PARITY_FIELDS = (
    "worst_slack",
    "total_negative_slack",
    "ace4",
    "wire_length",
    "via_count",
    "overflow",
    "objective",
)


@dataclass
class RoutingResult:
    """Metrics of one (chip, Steiner method) routing run."""

    chip: str
    method: str
    worst_slack: float
    total_negative_slack: float
    ace4: float
    wire_length: float
    via_count: int
    walltime_seconds: float
    overflow: float = 0.0
    objective: float = 0.0
    num_nets: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (the JSON schema served by ``repro.serve``)."""
        return {
            "chip": self.chip,
            "method": self.method,
            "WS": self.worst_slack,
            "TNS": self.total_negative_slack,
            "ACE4": self.ace4,
            "WL": self.wire_length,
            "Vias": self.via_count,
            "Walltime": self.walltime_seconds,
            "Overflow": self.overflow,
            "Objective": self.objective,
            "Nets": self.num_nets,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RoutingResult":
        """Rebuild a result from its :meth:`as_dict` record.

        The inverse of :meth:`as_dict`; a record that went through a JSON
        round-trip reproduces the original result exactly (Python's JSON
        float encoding is lossless for finite doubles).  ``Overflow``,
        ``Objective`` and ``Nets`` are optional for compatibility with
        records written before they were part of the schema.
        """
        return cls(
            chip=str(record["chip"]),
            method=str(record["method"]),
            worst_slack=float(record["WS"]),  # type: ignore[arg-type]
            total_negative_slack=float(record["TNS"]),  # type: ignore[arg-type]
            ace4=float(record["ACE4"]),  # type: ignore[arg-type]
            wire_length=float(record["WL"]),  # type: ignore[arg-type]
            via_count=int(record["Vias"]),  # type: ignore[arg-type]
            walltime_seconds=float(record["Walltime"]),  # type: ignore[arg-type]
            overflow=float(record.get("Overflow", 0.0)),  # type: ignore[arg-type]
            objective=float(record.get("Objective", 0.0)),  # type: ignore[arg-type]
            num_nets=int(record.get("Nets", 0)),  # type: ignore[arg-type]
        )


def format_result_row(result: RoutingResult) -> str:
    """One table line in the spirit of paper Tables IV/V."""
    return (
        f"{result.chip:>4} {result.method:>3} "
        f"WS={result.worst_slack:9.1f}ps "
        f"TNS={result.total_negative_slack:12.1f}ps "
        f"ACE4={result.ace4:6.2f}% "
        f"WL={result.wire_length:9.1f} "
        f"Vias={result.via_count:8d} "
        f"t={result.walltime_seconds:7.2f}s"
    )
