"""The timing-constrained global router.

The :class:`GlobalRouter` reproduces the routing flow the paper evaluates its
Steiner oracle in (Held et al., TCAD 2018, simplified):

1. every net is routed by the configured Steiner oracle under the current
   congestion costs and sink delay weights (rip-up and re-route in later
   rounds),
2. a static timing analysis over the routed trees yields slacks,
3. the resource-sharing prices are updated: edge prices grow with congestion
   and sink delay weights grow with criticality,
4. repeat for a configured number of rounds.

The Steiner oracle is pluggable (``L1``, ``SL``, ``PD`` or ``CD``), which is
exactly the comparison of paper Tables IV and V.  The router can also record
every cost-distance Steiner instance it generates, providing the
"identical instances" used for the apples-to-apples comparison of Tables I
and II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import faults, obs
from repro.core.bifurcation import BifurcationModel
from repro.core.costctx import OracleCostContext
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.engine.cache import RoundMemo
from repro.engine.engine import EngineConfig, RoutingEngine
from repro.engine.rng import derive_net_rng_for_name
from repro.grid.congestion import CongestionMap
from repro.grid.graph import RoutingGraph
from repro.router.metrics import RoutingResult
from repro.router.netlist import Netlist
from repro.router.resource_sharing import ResourceSharingConfig, ResourceSharingPrices
from repro.timing.sta import TimingReport

__all__ = ["GlobalRouterConfig", "GlobalRouter"]


@dataclass(frozen=True)
class GlobalRouterConfig:
    """Configuration of the global routing flow.

    Attributes
    ----------
    num_rounds:
        Number of resource-sharing rounds (route + price update).
    dbif:
        Bifurcation penalty.  ``None`` derives it from the repeater-chain
        model of the graph's layer stack; ``0.0`` disables penalties (the
        setting of Tables I and IV).
    eta:
        Bifurcation split parameter.
    cost_refresh_interval:
        Number of nets routed between refreshes of the congestion cost
        vector within one round.
    resource_sharing:
        Price-update parameters.
    record_instances:
        When true, every Steiner instance generated in the final round is
        kept in :attr:`GlobalRouter.collected_instances` for the
        instance-level comparison of Tables I/II.
    seed:
        Seed for the oracle's randomised choices.  Every net gets a private
        RNG stream derived from ``(seed, net_index)`` (see
        :mod:`repro.engine.rng`), so trees are independent of routing order
        and identical across engine backends.
    engine:
        Configuration of the batch-routing engine: executor backend
        (``serial`` / ``process``), scheduling policy, and re-route cache.
    shards:
        Number of rectangular regions for multi-region (divide-and-conquer)
        routing.  ``1`` (default) keeps the classic single-region flow;
        ``K > 1`` routes region-interior nets through K independent
        per-region engines and seam-crossing nets in a global stitch pass
        (see :mod:`repro.shard.coordinator`).  Replay memo logs (ECO
        sessions) are carried through the coordinator, so
        :class:`repro.serve.session.RoutingSession` works at any ``K``.
    shard_parity:
        Verification mode of the shard layer: interior nets are routed on
        the full graph and all nets of a round see the round-start
        congestion snapshot, which reproduces the unsharded router (at
        ``cost_refresh_interval >= num_nets``) bit for bit.  The default
        (``False``) routes interior nets on extracted region subgraphs --
        the fast path.
    shard_halo:
        Tiles added around each net's pin bounding box before deciding
        whether it is interior to a region; larger halos classify more nets
        as seam-crossing.
    shard_workers:
        Worker processes for the region-parallel interior pass of the shard
        layer.  ``None`` or ``1`` (default) routes the K regions serially
        in-process; ``> 1`` fans them out over a process pool (see
        :mod:`repro.shard.executor`).  All values produce bit-identical
        results -- regions are independent by construction and their deltas
        are stitched in fixed region order -- so this knob, like the engine
        backend, is excluded from checkpoint fingerprints.
    shard_start_method:
        ``multiprocessing`` start method of the shard worker pool
        (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None`` prefers
        ``fork`` where available.
    """

    num_rounds: int = 2
    dbif: Optional[float] = 0.0
    eta: float = 0.25
    cost_refresh_interval: int = 8
    resource_sharing: ResourceSharingConfig = field(default_factory=ResourceSharingConfig)
    record_instances: bool = False
    seed: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)
    shards: int = 1
    shard_parity: bool = False
    shard_halo: int = 0
    shard_workers: Optional[int] = None
    shard_start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_halo < 0:
            raise ValueError("shard_halo must be non-negative")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be positive")


class GlobalRouter:
    """Routes a netlist with a pluggable Steiner tree oracle."""

    def __init__(
        self,
        graph: RoutingGraph,
        netlist: Netlist,
        oracle: SteinerOracle,
        config: Optional[GlobalRouterConfig] = None,
    ) -> None:
        netlist.validate_on_graph(graph)
        self.graph = graph
        self.netlist = netlist
        self.oracle = oracle
        self.config = config or GlobalRouterConfig()
        self.congestion = CongestionMap(graph)
        self.prices = ResourceSharingPrices(
            graph,
            [net.num_sinks for net in netlist.nets],
            self.config.resource_sharing,
        )
        self.bifurcation = self._make_bifurcation()
        if self.config.shards > 1:
            # Imported lazily: the shard layer sits above the engine and
            # constructs netlists, so a module-level import would cycle.
            from repro.shard.coordinator import ShardCoordinator

            self.engine = ShardCoordinator(
                graph=graph,
                netlist=netlist,
                oracle=oracle,
                bifurcation=self.bifurcation,
                congestion=self.congestion,
                prices=self.prices,
                seed=self.config.seed,
                cost_refresh_interval=self.config.cost_refresh_interval,
                config=self.config.engine,
                shards=self.config.shards,
                parity=self.config.shard_parity,
                halo=self.config.shard_halo,
                workers=self.config.shard_workers,
                start_method=self.config.shard_start_method,
            )
        else:
            self.engine = RoutingEngine(
                graph=graph,
                netlist=netlist,
                oracle=oracle,
                bifurcation=self.bifurcation,
                congestion=self.congestion,
                prices=self.prices,
                seed=self.config.seed,
                cost_refresh_interval=self.config.cost_refresh_interval,
                config=self.config.engine,
            )
        self.trees: List[Optional[EmbeddedTree]] = [None] * netlist.num_nets
        self.collected_instances: List[SteinerInstance] = []
        self.timing_report: Optional[TimingReport] = None
        #: Per-round telemetry samples (always on; observe-only, so recorded
        #: and unrecorded runs stay bit-identical).  The serve layer reads
        #: ``series.latest()`` from its round hook for history/watch.
        self.series = obs.RoundSeries()
        #: Rounds already routed (and priced).  ``run()`` continues from
        #: here, which is what makes checkpoint/resume work: restoring a
        #: checkpoint sets this counter and ``run()`` picks up mid-flow.
        self.rounds_completed: int = 0
        #: Per-round memo log of the last ``run(record_log=True)`` (see
        #: :class:`repro.engine.cache.RoundMemo`); consumed by ECO replays.
        self.replay_log: Optional[List[RoundMemo]] = None

    # ------------------------------------------------------------------ API
    def run(
        self,
        on_round_end: Optional[Callable[["GlobalRouter", int], None]] = None,
        replay: Optional[Sequence[RoundMemo]] = None,
        record_log: bool = False,
    ) -> RoutingResult:
        """Run the flow from ``rounds_completed`` and return the metrics.

        Parameters
        ----------
        on_round_end:
            Called as ``on_round_end(router, round_index)`` after every
            completed round (prices already updated).  Checkpoint writers
            and job-cancellation hooks plug in here; an exception raised by
            the callback aborts the run after a consistent round boundary.
        replay:
            Per-round memos of a previous run over a (slightly) different
            netlist; nets whose lookup signature is unchanged reuse the
            memoised tree without an oracle call (requires the engine's
            re-route cache).
        record_log:
            Record this run's per-round memos into :attr:`replay_log`
            (requires the engine's re-route cache).
        """
        start = time.monotonic()
        if record_log:
            self.replay_log = []
        try:
            while self.rounds_completed < self.config.num_rounds:
                round_index = self.rounds_completed
                # Round context for fault choke points that sit below the
                # round loop (the engine's batch path); no-op bookkeeping.
                faults.set_round(round_index)
                final_round = round_index == self.config.num_rounds - 1
                replay_round = None
                if replay is not None and round_index < len(replay):
                    replay_round = replay[round_index]
                log_round = RoundMemo() if record_log else None
                with obs.span(
                    "round", round=round_index, final=final_round
                ) as round_span:
                    self._route_round(
                        round_index,
                        record=final_round and self.config.record_instances,
                        replay_round=replay_round,
                        log_round=log_round,
                    )
                    if log_round is not None:
                        log_round.trees = {
                            i: tree
                            for i, tree in enumerate(self.trees)
                            if tree is not None
                        }
                        self.replay_log.append(log_round)
                    with obs.span("sta", round=round_index):
                        self.timing_report = self._run_sta()
                    if not final_round:
                        with obs.span("price_update", round=round_index):
                            self.prices.update_edge_prices(self.congestion)
                            self.prices.update_delay_weights(self.timing_report)
                    round_span.set(
                        worst_slack=self.timing_report.worst_slack,
                        overflow=self.congestion.overflow(),
                    )
                obs.inc("router.rounds")
                self.rounds_completed = round_index + 1
                self.series.record(obs.round_sample(self, round_index))
                if on_round_end is not None:
                    on_round_end(self, round_index)
                plan = faults.get_plan()
                if plan is not None and plan.should("crash-run", round_index):
                    # Deliberately *after* on_round_end: the checkpoint of
                    # this round is durably renamed into place, which is
                    # exactly the state a resume must recover from.
                    faults.hard_crash(round_index)
        finally:
            faults.set_round(None)
            self.engine.close()
        if self.timing_report is None:
            # Resumed from a checkpoint taken after the final round: the
            # timing report is a pure function of the restored trees.
            self.timing_report = self._run_sta()
        walltime = time.monotonic() - start
        return self._collect_metrics(walltime)

    def route_single_net(self, net_index: int) -> EmbeddedTree:
        """Route one net in isolation under the current prices (helper for tests)."""
        instance = self.build_instance(net_index, self._current_costs())
        rng = derive_net_rng_for_name(
            self.config.seed, self.netlist.nets[net_index].name
        )
        tree = self.oracle.build(instance, rng)
        tree.validate()
        return tree

    def build_instance(self, net_index: int, costs: np.ndarray) -> SteinerInstance:
        """Build the cost-distance Steiner instance of one net."""
        root, sinks = self.netlist.net_terminals(self.graph, net_index)
        return SteinerInstance(
            graph=self.graph,
            root=root,
            sinks=sinks,
            weights=self.prices.weights_of(net_index),
            cost=costs,
            delay=self.graph.delay_array(),
            bifurcation=self.bifurcation,
            name=f"{self.netlist.name}/{self.netlist.nets[net_index].name}",
        )

    # --------------------------------------------------------- checkpointing
    def export_state(self) -> Dict[str, object]:
        """Everything that determines the remainder of the flow, in memory.

        The returned dict (numpy arrays included) restores a freshly
        constructed router to this router's exact mid-flow state via
        :meth:`import_state`; :mod:`repro.serve.checkpoint` handles the
        on-disk encoding.  The replay log and collected instances are
        intentionally excluded -- they are derived artifacts.
        """
        trees: List[Optional[Dict[str, object]]] = []
        for tree in self.trees:
            if tree is None:
                trees.append(None)
            else:
                trees.append(
                    {
                        "root": int(tree.root),
                        "sinks": [int(s) for s in tree.sinks],
                        "edges": [int(e) for e in tree.edges],
                        "method": tree.method,
                    }
                )
        cache_signatures: Optional[Dict[int, bytes]] = None
        if self.engine.cache is not None:
            cache_signatures = self.engine.cache.export_signatures()
        region_cache_signatures: Optional[Dict[str, object]] = None
        if hasattr(self.engine, "export_cache_signatures"):
            # Sharded flows keep their re-route signatures inside the scope
            # engines (regions, seam scopes, the global seam engine); the
            # coordinator exports them as name-keyed per-scope sections so a
            # resume -- even under a different decomposition -- can
            # redistribute them.
            region_cache_signatures = self.engine.export_cache_signatures()
        return {
            "rounds_completed": self.rounds_completed,
            "trees": trees,
            "congestion": self.congestion.state_dict(),
            "edge_prices": self.prices.edge_prices.copy(),
            "delay_weights": [list(w) for w in self.prices.delay_weights],
            "cache_signatures": cache_signatures,
            "region_cache_signatures": region_cache_signatures,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a state exported by :meth:`export_state` (exact inverse)."""
        trees = state["trees"]
        if len(trees) != self.netlist.num_nets:  # type: ignore[arg-type]
            raise ValueError(
                "checkpoint state has a different net count than this netlist"
            )
        restored: List[Optional[EmbeddedTree]] = []
        for record in trees:  # type: ignore[union-attr]
            if record is None:
                restored.append(None)
                continue
            tree = EmbeddedTree(
                self.graph,
                int(record["root"]),
                tuple(int(s) for s in record["sinks"]),
                tuple(int(e) for e in record["edges"]),
                str(record["method"]),
            )
            restored.append(tree)
        self.congestion.load_state(state["congestion"])  # type: ignore[arg-type]
        edge_prices = np.asarray(state["edge_prices"], dtype=np.float64)
        if edge_prices.shape != self.prices.edge_prices.shape:
            raise ValueError("checkpoint edge prices do not match this graph")
        delay_weights = [
            [float(w) for w in weights]
            for weights in state["delay_weights"]  # type: ignore[union-attr]
        ]
        if [len(w) for w in delay_weights] != [
            net.num_sinks for net in self.netlist.nets
        ]:
            raise ValueError("checkpoint delay weights do not match this netlist")
        self.trees = restored
        self.prices.edge_prices = edge_prices.copy()
        self.prices.delay_weights = delay_weights
        self.rounds_completed = int(state["rounds_completed"])  # type: ignore[arg-type]
        self._restore_cache_signatures(
            state.get("cache_signatures"),  # type: ignore[arg-type]
            state.get("region_cache_signatures"),  # type: ignore[arg-type]
        )
        self.timing_report = None

    def _restore_cache_signatures(
        self,
        signatures: Optional[Dict[int, bytes]],
        region_sections: Optional[Dict[str, object]],
    ) -> None:
        """Install checkpointed re-route signatures into whichever engine
        this router runs -- including across decompositions.

        A flat (unsharded) signature map restores directly into a
        single-region engine and is redistributed by net name through a
        shard coordinator; per-region sections restore scope-exact into a
        matching coordinator, by-name into a different layout, and flatten
        back into a single-region engine.  A stale signature can only cause
        a cache miss (the lookup compares digests), so every combination is
        sound; parity-regime layouts restore exactly.
        """
        if hasattr(self.engine, "load_cache_signatures"):
            if region_sections:
                self.engine.load_cache_signatures(region_sections)
            elif signatures:
                by_name = {
                    self.netlist.nets[net_index].name: signature
                    for net_index, signature in signatures.items()
                    if 0 <= net_index < self.netlist.num_nets
                }
                self.engine.load_cache_signatures(
                    {"layout": {}, "scopes": {"unsharded": by_name}}
                )
            return
        if self.engine.cache is None:
            return
        if signatures is not None:
            self.engine.cache.load_signatures(signatures)
        elif region_sections:
            flat: Dict[str, bytes] = {}
            scopes = region_sections.get("scopes") or {}
            for section in scopes.values():  # type: ignore[union-attr]
                flat.update(section)
            index_by_name = {net.name: i for i, net in enumerate(self.netlist.nets)}
            self.engine.cache.load_signatures(
                {
                    index_by_name[name]: signature
                    for name, signature in flat.items()
                    if name in index_by_name
                }
            )

    # ------------------------------------------------------------ internals
    def _make_bifurcation(self) -> BifurcationModel:
        dbif = self.config.dbif
        if dbif is None:
            dbif = self.graph.delay_model.bifurcation_penalty()
        return BifurcationModel(dbif=dbif, eta=self.config.eta)

    def _current_costs(self) -> np.ndarray:
        return self.prices.edge_costs(self.congestion)

    def _route_round(
        self,
        round_index: int,
        record: bool,
        replay_round: Optional[RoundMemo] = None,
        log_round: Optional[RoundMemo] = None,
    ) -> None:
        """Route every net once, delegating batching and execution to the engine."""
        recorded = self.engine.route_round(
            round_index,
            self.trees,
            record=record,
            replay_round=replay_round,
            log_round=log_round,
        )
        if record:
            self.collected_instances.extend(recorded)

    def _net_delays(self) -> Dict[int, List[float]]:
        """Per-sink delays of every routed net (for the STA)."""
        delays: Dict[int, List[float]] = {}
        costs = self.graph.base_cost_array()
        delay = self.graph.delay_array()
        # One context for the whole sweep: every per-net instance shares the
        # same static cost/delay vectors, so the O(edges) validation scans
        # run once instead of once per net.
        context = OracleCostContext(self.graph, costs, delay=delay)
        costs = context.cost
        for net_index, tree in enumerate(self.trees):
            if tree is None:
                delays[net_index] = [0.0] * self.netlist.nets[net_index].num_sinks
                continue
            instance = SteinerInstance(
                graph=self.graph,
                root=tree.root,
                sinks=list(tree.sinks),
                weights=self.prices.weights_of(net_index),
                cost=costs,
                delay=delay,
                bifurcation=self.bifurcation,
                context=context,
            )
            breakdown = evaluate_tree(instance, tree)
            delays[net_index] = list(breakdown.sink_delays)
        return delays

    def _run_sta(self) -> TimingReport:
        sta = self.netlist.timing_graph()
        return sta.analyze(self._net_delays())

    def _collect_metrics(self, walltime: float) -> RoutingResult:
        report = self.timing_report
        assert report is not None
        wire_length = 0.0
        via_count = 0
        objective = 0.0
        costs = self._current_costs()
        for net_index, tree in enumerate(self.trees):
            if tree is None:
                continue
            wire_length += tree.wire_length()
            via_count += tree.via_count()
            objective += tree.congestion_cost(costs)
        return RoutingResult(
            chip=self.netlist.name,
            method=self.oracle.name,
            worst_slack=report.worst_slack,
            total_negative_slack=report.total_negative_slack,
            ace4=self.congestion.ace4(),
            wire_length=wire_length,
            via_count=via_count,
            walltime_seconds=walltime,
            overflow=self.congestion.overflow(),
            objective=objective,
            num_nets=self.netlist.num_nets,
        )
