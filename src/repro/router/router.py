"""The timing-constrained global router.

The :class:`GlobalRouter` reproduces the routing flow the paper evaluates its
Steiner oracle in (Held et al., TCAD 2018, simplified):

1. every net is routed by the configured Steiner oracle under the current
   congestion costs and sink delay weights (rip-up and re-route in later
   rounds),
2. a static timing analysis over the routed trees yields slacks,
3. the resource-sharing prices are updated: edge prices grow with congestion
   and sink delay weights grow with criticality,
4. repeat for a configured number of rounds.

The Steiner oracle is pluggable (``L1``, ``SL``, ``PD`` or ``CD``), which is
exactly the comparison of paper Tables IV and V.  The router can also record
every cost-distance Steiner instance it generates, providing the
"identical instances" used for the apples-to-apples comparison of Tables I
and II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bifurcation import BifurcationModel
from repro.core.instance import SteinerInstance
from repro.core.objective import evaluate_tree
from repro.core.oracle import SteinerOracle
from repro.core.tree import EmbeddedTree
from repro.engine.engine import EngineConfig, RoutingEngine
from repro.engine.rng import derive_net_rng
from repro.grid.congestion import CongestionMap
from repro.grid.graph import RoutingGraph
from repro.router.metrics import RoutingResult
from repro.router.netlist import Netlist
from repro.router.resource_sharing import ResourceSharingConfig, ResourceSharingPrices
from repro.timing.sta import TimingReport

__all__ = ["GlobalRouterConfig", "GlobalRouter"]


@dataclass(frozen=True)
class GlobalRouterConfig:
    """Configuration of the global routing flow.

    Attributes
    ----------
    num_rounds:
        Number of resource-sharing rounds (route + price update).
    dbif:
        Bifurcation penalty.  ``None`` derives it from the repeater-chain
        model of the graph's layer stack; ``0.0`` disables penalties (the
        setting of Tables I and IV).
    eta:
        Bifurcation split parameter.
    cost_refresh_interval:
        Number of nets routed between refreshes of the congestion cost
        vector within one round.
    resource_sharing:
        Price-update parameters.
    record_instances:
        When true, every Steiner instance generated in the final round is
        kept in :attr:`GlobalRouter.collected_instances` for the
        instance-level comparison of Tables I/II.
    seed:
        Seed for the oracle's randomised choices.  Every net gets a private
        RNG stream derived from ``(seed, net_index)`` (see
        :mod:`repro.engine.rng`), so trees are independent of routing order
        and identical across engine backends.
    engine:
        Configuration of the batch-routing engine: executor backend
        (``serial`` / ``process``), scheduling policy, and re-route cache.
    """

    num_rounds: int = 2
    dbif: Optional[float] = 0.0
    eta: float = 0.25
    cost_refresh_interval: int = 8
    resource_sharing: ResourceSharingConfig = field(default_factory=ResourceSharingConfig)
    record_instances: bool = False
    seed: int = 0
    engine: EngineConfig = field(default_factory=EngineConfig)


class GlobalRouter:
    """Routes a netlist with a pluggable Steiner tree oracle."""

    def __init__(
        self,
        graph: RoutingGraph,
        netlist: Netlist,
        oracle: SteinerOracle,
        config: Optional[GlobalRouterConfig] = None,
    ) -> None:
        netlist.validate_on_graph(graph)
        self.graph = graph
        self.netlist = netlist
        self.oracle = oracle
        self.config = config or GlobalRouterConfig()
        self.congestion = CongestionMap(graph)
        self.prices = ResourceSharingPrices(
            graph,
            [net.num_sinks for net in netlist.nets],
            self.config.resource_sharing,
        )
        self.bifurcation = self._make_bifurcation()
        self.engine = RoutingEngine(
            graph=graph,
            netlist=netlist,
            oracle=oracle,
            bifurcation=self.bifurcation,
            congestion=self.congestion,
            prices=self.prices,
            seed=self.config.seed,
            cost_refresh_interval=self.config.cost_refresh_interval,
            config=self.config.engine,
        )
        self.trees: List[Optional[EmbeddedTree]] = [None] * netlist.num_nets
        self.collected_instances: List[SteinerInstance] = []
        self.timing_report: Optional[TimingReport] = None

    # ------------------------------------------------------------------ API
    def run(self) -> RoutingResult:
        """Run the full flow and return the Table IV/V style metrics."""
        start = time.perf_counter()
        try:
            for round_index in range(self.config.num_rounds):
                final_round = round_index == self.config.num_rounds - 1
                self._route_round(
                    round_index, record=final_round and self.config.record_instances
                )
                self.timing_report = self._run_sta()
                if not final_round:
                    self.prices.update_edge_prices(self.congestion)
                    self.prices.update_delay_weights(self.timing_report)
        finally:
            self.engine.close()
        walltime = time.perf_counter() - start
        return self._collect_metrics(walltime)

    def route_single_net(self, net_index: int) -> EmbeddedTree:
        """Route one net in isolation under the current prices (helper for tests)."""
        instance = self.build_instance(net_index, self._current_costs())
        rng = derive_net_rng(self.config.seed, net_index)
        tree = self.oracle.build(instance, rng)
        tree.validate()
        return tree

    def build_instance(self, net_index: int, costs: np.ndarray) -> SteinerInstance:
        """Build the cost-distance Steiner instance of one net."""
        root, sinks = self.netlist.net_terminals(self.graph, net_index)
        return SteinerInstance(
            graph=self.graph,
            root=root,
            sinks=sinks,
            weights=self.prices.weights_of(net_index),
            cost=costs,
            delay=self.graph.delay_array(),
            bifurcation=self.bifurcation,
            name=f"{self.netlist.name}/{self.netlist.nets[net_index].name}",
        )

    # ------------------------------------------------------------ internals
    def _make_bifurcation(self) -> BifurcationModel:
        dbif = self.config.dbif
        if dbif is None:
            dbif = self.graph.delay_model.bifurcation_penalty()
        return BifurcationModel(dbif=dbif, eta=self.config.eta)

    def _current_costs(self) -> np.ndarray:
        return self.prices.edge_costs(self.congestion)

    def _route_round(self, round_index: int, record: bool) -> None:
        """Route every net once, delegating batching and execution to the engine."""
        recorded = self.engine.route_round(round_index, self.trees, record=record)
        if record:
            self.collected_instances.extend(recorded)

    def _net_delays(self) -> Dict[int, List[float]]:
        """Per-sink delays of every routed net (for the STA)."""
        delays: Dict[int, List[float]] = {}
        costs = self.graph.base_cost_array()
        for net_index, tree in enumerate(self.trees):
            if tree is None:
                delays[net_index] = [0.0] * self.netlist.nets[net_index].num_sinks
                continue
            instance = SteinerInstance(
                graph=self.graph,
                root=tree.root,
                sinks=list(tree.sinks),
                weights=self.prices.weights_of(net_index),
                cost=costs,
                delay=self.graph.delay_array(),
                bifurcation=self.bifurcation,
            )
            breakdown = evaluate_tree(instance, tree)
            delays[net_index] = list(breakdown.sink_delays)
        return delays

    def _run_sta(self) -> TimingReport:
        sta = self.netlist.timing_graph()
        return sta.analyze(self._net_delays())

    def _collect_metrics(self, walltime: float) -> RoutingResult:
        report = self.timing_report
        assert report is not None
        wire_length = 0.0
        via_count = 0
        objective = 0.0
        costs = self._current_costs()
        for net_index, tree in enumerate(self.trees):
            if tree is None:
                continue
            wire_length += tree.wire_length()
            via_count += tree.via_count()
            objective += tree.congestion_cost(costs)
        return RoutingResult(
            chip=self.netlist.name,
            method=self.oracle.name,
            worst_slack=report.worst_slack,
            total_negative_slack=report.total_negative_slack,
            ace4=self.congestion.ace4(),
            wire_length=wire_length,
            via_count=via_count,
            walltime_seconds=walltime,
            overflow=self.congestion.overflow(),
            objective=objective,
            num_nets=self.netlist.num_nets,
        )
